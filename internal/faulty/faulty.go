// Package faulty wraps any mips.Solver with a deterministic fault-injection
// plan: errors, panics, latency, and torn mutations fired on exactly the Nth
// call of an operation class, or drawn at a seeded rate. It exists for the
// fault-containment test suites — the shard quarantine/revival matrix, the
// serving deadline tests, and the chaos soak — which need failures that are
// reproducible call-for-call under -race and across runs.
//
// The wrapper forwards every optional solver interface the repository's
// composites probe for. Where the inner solver lacks an optional capability
// the wrapper degrades along the documented contracts instead of lying:
// QueryWithFloors and QueryWithFloorBoard fall back to Query (below-floor
// entries MAY be retained; a never-raised board observes -Inf floors), and
// QueryCtx falls back to a ctx check at call entry followed by Query (call
// entry is the wrapper's natural cancellation boundary). Mutation and
// persistence calls on an incapable inner return errors, mirroring how the
// composites treat missing interfaces.
//
// Snapshots pass through to the inner solver, so a snapshot Saved through a
// wrapper restores as the bare inner solver — a revived shard sheds its
// fault plan, which is exactly what the revival tests want: the replacement
// must behave like a healthy shard.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"optimus/internal/mat"
	"optimus/internal/mips"
	"optimus/internal/topk"
)

// Op classifies the wrapper's entry points for fault matching. Every query
// variant (Query, QueryAll, QueryWithFloors, QueryWithFloorBoard, QueryCtx)
// counts as one OpQuery call; AddItems, RemoveItems, and AddUsers as
// OpMutate; Save and Load as OpPersist.
type Op int

// Operation classes.
const (
	OpQuery Op = iota
	OpBuild
	OpMutate
	OpPersist
	numOps
)

// String names the op for failure messages.
func (o Op) String() string {
	switch o {
	case OpQuery:
		return "query"
	case OpBuild:
		return "build"
	case OpMutate:
		return "mutate"
	case OpPersist:
		return "persist"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Kind selects what an armed fault does.
type Kind int

// Fault kinds.
const (
	// KindError returns the fault's Err without touching the inner solver.
	KindError Kind = iota
	// KindPanic panics with a descriptive value before the inner call.
	KindPanic
	// KindLatency sleeps for the fault's Latency before the inner call. On a
	// ctx-carrying query the sleep races ctx.Done and returns ctx.Err() if
	// cancellation wins — the "hung shard that eventually notices" model. On
	// ctx-less paths the sleep runs to completion: a stall the caller cannot
	// interrupt.
	KindLatency
	// KindTorn applies the inner mutation first and THEN reports failure —
	// the torn write: state advanced, caller told otherwise. Only meaningful
	// for OpMutate; on other ops it degrades to KindError.
	KindTorn
)

// String names the kind for failure messages.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindTorn:
		return "torn"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the default error KindError and KindTorn faults surface.
var ErrInjected = errors.New("faulty: injected fault")

// Fault is one scheduled failure: the Call-th invocation (1-based) of Op
// fires Kind. Latency and Err default to the Plan's when zero/nil.
type Fault struct {
	Op      Op
	Call    int
	Kind    Kind
	Latency time.Duration
	Err     error
}

// Plan is a wrapper's complete fault schedule. Faults lists deterministic
// call-indexed failures; independently, Rate > 0 arms a seeded random draw
// on every un-scheduled call, choosing uniformly among Kinds (KindError only
// when Kinds is empty). The two modes compose: the matrix tests pin exact
// calls, the chaos soak sets a rate and a seed.
type Plan struct {
	Faults  []Fault
	Seed    int64
	Rate    float64
	Kinds   []Kind
	Latency time.Duration // default latency for KindLatency faults
	Err     error         // default error for KindError/KindTorn faults
}

// Solver wraps an inner solver with a fault plan. Safe for concurrent use:
// the call counters and the rng sit behind a mutex, matching the inner
// contract that queries may run concurrently.
type Solver struct {
	inner mips.Solver
	plan  Plan

	mu    sync.Mutex
	calls [numOps]int64
	rng   *rand.Rand
}

// Wrap returns inner wrapped with the given plan.
func Wrap(inner mips.Solver, plan Plan) *Solver {
	if plan.Err == nil {
		plan.Err = ErrInjected
	}
	if plan.Latency == 0 {
		plan.Latency = time.Millisecond
	}
	return &Solver{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Inner returns the wrapped solver (tests unwrap to reach the oracle).
func (s *Solver) Inner() mips.Solver { return s.inner }

// Calls reports how many times the given op class has been entered.
func (s *Solver) Calls(op Op) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[op]
}

// next advances the op's call counter and returns the fault armed for this
// call, or nil. Scheduled faults win over the rate draw; the rng is consumed
// only on calls the schedule leaves open, so adding a scheduled fault does
// not shift the random sequence of other ops... it does shift this op's — a
// plan is deterministic as a whole, not per fault.
func (s *Solver) next(op Op) *Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls[op]++
	n := s.calls[op]
	for i := range s.plan.Faults {
		f := &s.plan.Faults[i]
		if f.Op == op && int64(f.Call) == n {
			return s.filled(f)
		}
	}
	if s.plan.Rate > 0 && s.rng.Float64() < s.plan.Rate {
		kind := KindError
		if len(s.plan.Kinds) > 0 {
			kind = s.plan.Kinds[s.rng.Intn(len(s.plan.Kinds))]
		}
		return s.filled(&Fault{Op: op, Kind: kind})
	}
	return nil
}

// filled copies f with the plan's defaults applied.
func (s *Solver) filled(f *Fault) *Fault {
	g := *f
	if g.Err == nil {
		g.Err = s.plan.Err
	}
	if g.Latency == 0 {
		g.Latency = s.plan.Latency
	}
	return &g
}

// inject fires a non-torn fault: returns an error, panics, or sleeps. A nil
// return means the call should proceed to the inner solver. ctx may be nil
// (uninterruptible sleep).
func (s *Solver) inject(ctx context.Context, f *Fault) error {
	if f == nil {
		return nil
	}
	switch f.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faulty: injected panic (%s call %d)", f.Op, f.Call))
	case KindLatency:
		if ctx == nil {
			time.Sleep(f.Latency)
			return nil
		}
		t := time.NewTimer(f.Latency)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	default: // KindError, and KindTorn outside a mutation
		return f.Err
	}
}

// --- Solver ---

// Name implements mips.Solver.
func (s *Solver) Name() string { return "Faulty(" + s.inner.Name() + ")" }

// Batches implements mips.Solver.
func (s *Solver) Batches() bool { return s.inner.Batches() }

// Build implements mips.Solver.
func (s *Solver) Build(users, items *mat.Matrix) error {
	if err := s.inject(nil, s.next(OpBuild)); err != nil {
		return err
	}
	return s.inner.Build(users, items)
}

// Query implements mips.Solver.
func (s *Solver) Query(userIDs []int, k int) ([][]topk.Entry, error) {
	if err := s.inject(nil, s.next(OpQuery)); err != nil {
		return nil, err
	}
	return s.inner.Query(userIDs, k)
}

// QueryAll implements mips.Solver.
func (s *Solver) QueryAll(k int) ([][]topk.Entry, error) {
	if err := s.inject(nil, s.next(OpQuery)); err != nil {
		return nil, err
	}
	return s.inner.QueryAll(k)
}

// --- optional query interfaces ---

// QueryCtx implements mips.CancellableQuerier. Fault latency races
// ctx.Done; a cancellable inner keeps polling past the injection point,
// otherwise the entry check here is the only boundary.
func (s *Solver) QueryCtx(ctx context.Context, userIDs []int, k int, opts mips.QueryOptions) ([][]topk.Entry, error) {
	if err := s.inject(ctx, s.next(OpQuery)); err != nil {
		return nil, err
	}
	if cq, ok := s.inner.(mips.CancellableQuerier); ok {
		return cq.QueryCtx(ctx, userIDs, k, opts)
	}
	if err := mips.CtxErr(ctx); err != nil {
		return nil, err
	}
	return s.queryOpts(userIDs, k, opts)
}

// QueryWithFloors implements mips.ThresholdQuerier, degrading to Query when
// the inner solver has no floor path (the floor contract permits retaining
// below-floor entries).
func (s *Solver) QueryWithFloors(userIDs []int, k int, floors []float64) ([][]topk.Entry, error) {
	if err := s.inject(nil, s.next(OpQuery)); err != nil {
		return nil, err
	}
	return s.queryOpts(userIDs, k, mips.QueryOptions{Floors: floors})
}

// QueryWithFloorBoard implements mips.LiveFloorQuerier; an inner without the
// interface never observes the board, which is a valid (-Inf) observation.
func (s *Solver) QueryWithFloorBoard(userIDs []int, k int, board *topk.FloorBoard) ([][]topk.Entry, error) {
	if err := s.inject(nil, s.next(OpQuery)); err != nil {
		return nil, err
	}
	return s.queryOpts(userIDs, k, mips.QueryOptions{Board: board})
}

// queryOpts routes an already-injected query to the richest interface the
// inner solver offers for the given options.
func (s *Solver) queryOpts(userIDs []int, k int, opts mips.QueryOptions) ([][]topk.Entry, error) {
	if opts.Board != nil {
		if lf, ok := s.inner.(mips.LiveFloorQuerier); ok {
			return lf.QueryWithFloorBoard(userIDs, k, opts.Board)
		}
		if tq, ok := s.inner.(mips.ThresholdQuerier); ok {
			return tq.QueryWithFloors(userIDs, k, opts.Board.Snapshot(nil))
		}
		return s.inner.Query(userIDs, k)
	}
	if opts.Floors != nil {
		if tq, ok := s.inner.(mips.ThresholdQuerier); ok {
			return tq.QueryWithFloors(userIDs, k, opts.Floors)
		}
	}
	return s.inner.Query(userIDs, k)
}

// --- mutation ---

// AddItems implements mips.ItemMutator. KindTorn applies the mutation and
// then reports failure — the shard layer's repair path must reconcile.
func (s *Solver) AddItems(items *mat.Matrix) ([]int, error) {
	im, ok := s.inner.(mips.ItemMutator)
	if !ok {
		return nil, fmt.Errorf("faulty: inner %s is not an ItemMutator", s.inner.Name())
	}
	f := s.next(OpMutate)
	if f != nil && f.Kind == KindTorn {
		if ids, err := im.AddItems(items); err != nil {
			return ids, err
		}
		return nil, f.Err
	}
	if err := s.inject(nil, f); err != nil {
		return nil, err
	}
	return im.AddItems(items)
}

// RemoveItems implements mips.ItemMutator.
func (s *Solver) RemoveItems(ids []int) error {
	im, ok := s.inner.(mips.ItemMutator)
	if !ok {
		return fmt.Errorf("faulty: inner %s is not an ItemMutator", s.inner.Name())
	}
	f := s.next(OpMutate)
	if f != nil && f.Kind == KindTorn {
		if err := im.RemoveItems(ids); err != nil {
			return err
		}
		return f.Err
	}
	if err := s.inject(nil, f); err != nil {
		return err
	}
	return im.RemoveItems(ids)
}

// Generation implements mips.ItemMutator (0 when the inner cannot mutate —
// never reached through the composites, which gate on the interface).
func (s *Solver) Generation() uint64 {
	if im, ok := s.inner.(mips.ItemMutator); ok {
		return im.Generation()
	}
	return 0
}

// AddUsers implements mips.UserAdder.
func (s *Solver) AddUsers(users *mat.Matrix) ([]int, error) {
	ua, ok := s.inner.(mips.UserAdder)
	if !ok {
		return nil, fmt.Errorf("faulty: inner %s is not a UserAdder", s.inner.Name())
	}
	f := s.next(OpMutate)
	if f != nil && f.Kind == KindTorn {
		if ids, err := ua.AddUsers(users); err != nil {
			return ids, err
		}
		return nil, f.Err
	}
	if err := s.inject(nil, f); err != nil {
		return nil, err
	}
	return ua.AddUsers(users)
}

// --- persistence ---

// Save implements mips.Persister. The stream written is the INNER solver's
// snapshot (see the package comment: revival sheds the wrapper).
func (s *Solver) Save(w io.Writer) error {
	p, ok := s.inner.(mips.Persister)
	if !ok {
		return fmt.Errorf("faulty: inner %s is not a Persister", s.inner.Name())
	}
	if err := s.inject(nil, s.next(OpPersist)); err != nil {
		return err
	}
	return p.Save(w)
}

// Load implements mips.Persister.
func (s *Solver) Load(r io.Reader) error {
	p, ok := s.inner.(mips.Persister)
	if !ok {
		return fmt.Errorf("faulty: inner %s is not a Persister", s.inner.Name())
	}
	if err := s.inject(nil, s.next(OpPersist)); err != nil {
		return err
	}
	return p.Load(r)
}

// --- passthrough capabilities ---

// NumUsers implements mips.Sized (0 before Build or when the inner cannot
// report sizes).
func (s *Solver) NumUsers() int {
	if sz, ok := s.inner.(mips.Sized); ok {
		return sz.NumUsers()
	}
	return 0
}

// NumItems implements mips.Sized.
func (s *Solver) NumItems() int {
	if sz, ok := s.inner.(mips.Sized); ok {
		return sz.NumItems()
	}
	return 0
}

// SetThreads implements mips.ThreadSetter.
func (s *Solver) SetThreads(n int) {
	if ts, ok := s.inner.(mips.ThreadSetter); ok {
		ts.SetThreads(n)
	}
}

// SetEstimationFloors implements mips.FloorAwareEstimator.
func (s *Solver) SetEstimationFloors(floors []float64) {
	if fe, ok := s.inner.(mips.FloorAwareEstimator); ok {
		fe.SetEstimationFloors(floors)
	}
}

// ScanStats implements mips.ScanCounter.
func (s *Solver) ScanStats() mips.ScanStats {
	if sc, ok := s.inner.(mips.ScanCounter); ok {
		return sc.ScanStats()
	}
	return mips.ScanStats{}
}

// ResetScanStats implements mips.ScanCounter.
func (s *Solver) ResetScanStats() {
	if sc, ok := s.inner.(mips.ScanCounter); ok {
		sc.ResetScanStats()
	}
}

// Interface conformance.
var (
	_ mips.Solver              = (*Solver)(nil)
	_ mips.CancellableQuerier  = (*Solver)(nil)
	_ mips.ThresholdQuerier    = (*Solver)(nil)
	_ mips.LiveFloorQuerier    = (*Solver)(nil)
	_ mips.ItemMutator         = (*Solver)(nil)
	_ mips.UserAdder           = (*Solver)(nil)
	_ mips.Persister           = (*Solver)(nil)
	_ mips.Sized               = (*Solver)(nil)
	_ mips.ThreadSetter        = (*Solver)(nil)
	_ mips.FloorAwareEstimator = (*Solver)(nil)
	_ mips.ScanCounter         = (*Solver)(nil)
)
