package faulty

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Conn is the structural shape of a transport connection (one blocking
// request/reply exchange plus teardown). It is declared here rather than
// imported so this package stays transport-agnostic: internal/transport's
// Conn satisfies it without either package importing the other, which keeps
// the shard→faulty→transport import graph acyclic.
type Conn interface {
	Call(ctx context.Context, op byte, req []byte) ([]byte, error)
	Close() error
}

// ConnFaultKind enumerates the distributed failure modes a wire can exhibit.
type ConnFaultKind int

const (
	// ConnDrop fails the exchange outright — the message never arrives.
	ConnDrop ConnFaultKind = iota
	// ConnDelay stalls the exchange for Latency before proceeding, racing
	// the caller's context: a delay past the deadline surfaces as the
	// context's own error, exactly like a slow remote peer.
	ConnDelay
	// ConnCorrupt delivers a reply whose status byte is flipped — a frame
	// the client's decoder must reject, never silently mis-answer from.
	ConnCorrupt
	// ConnDuplicate performs the exchange twice and delivers the second
	// reply — the at-least-once retry a real network layer produces, which
	// idempotent worker calls must tolerate.
	ConnDuplicate
)

// String names the kind for test output.
func (k ConnFaultKind) String() string {
	switch k {
	case ConnDrop:
		return "drop"
	case ConnDelay:
		return "delay"
	case ConnCorrupt:
		return "corrupt"
	case ConnDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("ConnFaultKind(%d)", int(k))
	}
}

// ConnFault schedules one fault at the Nth exchange (1-based) counted across
// every conn sharing the same ConnFaults — redials included.
type ConnFault struct {
	Call    int           // fires when the shared exchange counter hits this value
	Kind    ConnFaultKind //
	Latency time.Duration // ConnDelay stall; ignored otherwise
}

// ConnPlan scripts a deterministic set of wire faults.
type ConnPlan struct {
	Faults []ConnFault
}

// ConnFaults injects a ConnPlan into every conn wrapped by the same
// instance. The exchange counter is shared across wraps — deliberately:
// revival dials a fresh conn, and a counter that reset on redial would
// re-fire the same fault forever, so the quarantine/revival loop could never
// converge. One ConnFaults per scripted scenario; Wrap it into each dial.
type ConnFaults struct {
	mu    sync.Mutex
	plan  ConnPlan
	calls int
}

// NewConnFaults returns a shared fault injector for plan.
func NewConnFaults(plan ConnPlan) *ConnFaults {
	return &ConnFaults{plan: plan}
}

// Calls returns the number of exchanges observed across all wrapped conns.
func (f *ConnFaults) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Schedule appends one fault to the live plan — how a test arms a fault
// after the build-time exchanges (caps fetch, snapshot capture) have already
// advanced the counter: read Calls, schedule at Calls()+1.
func (f *ConnFaults) Schedule(ft ConnFault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan.Faults = append(f.plan.Faults, ft)
}

// Disarm clears every not-yet-fired fault, quieting the wire for good. The
// chaos soak calls it once the system has converged back to healthy, so its
// exactness oracle runs against a clean transport — the moral equivalent of
// revival shedding a solver-level fault wrapper.
func (f *ConnFaults) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan.Faults = nil
}

// next advances the shared counter and returns the fault scheduled for this
// exchange, if any.
func (f *ConnFaults) next() (ConnFault, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	for _, ft := range f.plan.Faults {
		if ft.Call == f.calls {
			return ft, true
		}
	}
	return ConnFault{}, false
}

// Wrap interposes the shared fault script on one conn.
func (f *ConnFaults) Wrap(inner Conn) Conn {
	return &faultyConn{inner: inner, faults: f}
}

type faultyConn struct {
	inner  Conn
	faults *ConnFaults
}

func (c *faultyConn) Call(ctx context.Context, op byte, req []byte) ([]byte, error) {
	ft, fire := c.faults.next()
	if !fire {
		return c.inner.Call(ctx, op, req)
	}
	switch ft.Kind {
	case ConnDrop:
		return nil, fmt.Errorf("conn call %d dropped: %w", ft.Call, ErrInjected)
	case ConnDelay:
		timer := time.NewTimer(ft.Latency)
		defer timer.Stop()
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-timer.C:
			}
		} else {
			<-timer.C
		}
		return c.inner.Call(ctx, op, req)
	case ConnCorrupt:
		reply, err := c.inner.Call(ctx, op, req)
		if err != nil || len(reply) == 0 {
			return reply, err
		}
		// Corrupt a copy — the handler may own the original backing array.
		bad := make([]byte, len(reply))
		copy(bad, reply)
		bad[0] ^= 0x5a // any legal status becomes an illegal one
		return bad, nil
	case ConnDuplicate:
		first, err := c.inner.Call(ctx, op, req)
		if err != nil {
			return nil, err
		}
		second, err := c.inner.Call(ctx, op, req)
		if err != nil {
			// The retry itself failed; the first delivery stands.
			return first, nil
		}
		return second, nil
	default:
		return nil, fmt.Errorf("conn call %d: unknown fault kind %d: %w", ft.Call, int(ft.Kind), ErrInjected)
	}
}

func (c *faultyConn) Close() error { return c.inner.Close() }
