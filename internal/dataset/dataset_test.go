package dataset

import (
	"math"
	"strings"
	"testing"

	"optimus/internal/kmeans"
	"optimus/internal/mat"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "x", Users: 2, Items: 2, Factors: 2, TrueClusters: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{Users: 0, Items: 2, Factors: 2, TrueClusters: 1},
		{Users: 2, Items: 0, Factors: 2, TrueClusters: 1},
		{Users: 2, Items: 2, Factors: 0, TrueClusters: 1},
		{Users: 2, Items: 2, Factors: 2, TrueClusters: 0},
		{Users: 2, Items: 2, Factors: 2, TrueClusters: 1, UserSpread: -1},
		{Users: 2, Items: 2, Factors: 2, TrueClusters: 1, NormSigma: -1},
		{Users: 2, Items: 2, Factors: 2, TrueClusters: 1, ItemAlign: 2},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	if _, err := Generate(cases[0]); err == nil {
		t.Fatal("Generate must reject invalid configs")
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	cfg := Config{Name: "t", Users: 50, Items: 80, Factors: 7, TrueClusters: 3,
		UserSpread: 0.3, NormSigma: 0.5, ItemAlign: 0.4, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Users.Rows() != 50 || a.Users.Cols() != 7 || a.Items.Rows() != 80 || a.Items.Cols() != 7 {
		t.Fatalf("shapes wrong: %dx%d users, %dx%d items",
			a.Users.Rows(), a.Users.Cols(), a.Items.Rows(), a.Items.Cols())
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Users.Equal(b.Users, 0) || !a.Items.Equal(b.Items, 0) {
		t.Fatal("same seed must generate identical models")
	}
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Users.Equal(c.Users, 0) {
		t.Fatal("different seeds must generate different models")
	}
}

func TestNormSigmaControlsSkew(t *testing.T) {
	base := Config{Name: "t", Users: 20, Items: 2000, Factors: 8, TrueClusters: 4,
		UserSpread: 0.3, ItemAlign: 0.3, Seed: 1}
	flat := base
	flat.NormSigma = 0.05
	skewed := base
	skewed.NormSigma = 1.2
	mFlat, err := Generate(flat)
	if err != nil {
		t.Fatal(err)
	}
	mSkew, err := Generate(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if mSkew.NormSkew() < 2*mFlat.NormSkew() {
		t.Fatalf("skew knob ineffective: flat %.2f vs skewed %.2f",
			mFlat.NormSkew(), mSkew.NormSkew())
	}
}

func TestUserSpreadControlsClusterTightness(t *testing.T) {
	base := Config{Name: "t", Users: 400, Items: 10, Factors: 8, TrueClusters: 4,
		NormSigma: 0.3, ItemAlign: 0.3, Seed: 2}
	tight := base
	tight.UserSpread = 0.05
	loose := base
	loose.UserSpread = 1.0
	meanTheta := func(c Config) float64 {
		m, err := Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := kmeans.Run(m.Users, kmeans.Config{K: 4, Iterations: 5, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return kmeans.MeanAngle(m.Users, res)
	}
	tt, lt := meanTheta(tight), meanTheta(loose)
	if tt >= lt {
		t.Fatalf("tight spread should give smaller angles: %.3f vs %.3f", tt, lt)
	}
	if tt > 0.2 {
		t.Fatalf("tight clusters should have mean θuc < 0.2 rad, got %.3f", tt)
	}
}

func TestRegistryCoversPaperModels(t *testing.T) {
	regs := Registry()
	if len(regs) != 23 {
		t.Fatalf("registry has %d models, the paper evaluates 23", len(regs))
	}
	seen := map[string]bool{}
	for _, c := range regs {
		if err := c.Validate(); err != nil {
			t.Fatalf("registry model %s invalid: %v", c.Name, err)
		}
		if seen[c.Name] {
			t.Fatalf("duplicate registry name %s", c.Name)
		}
		seen[c.Name] = true
	}
	// Spot-check the paper's named models.
	for _, want := range []string{
		"netflix-dsgd-50", "netflix-nomad-25", "netflix-bpr-100",
		"r2-nomad-50", "kdd-nomad-10", "kdd-ref-51", "glove-200",
	} {
		if !seen[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestRegistryShapesFollowTableI(t *testing.T) {
	// Table I ratios: Netflix and R2 are user-heavy; KDD has items of the
	// same order as users; GloVe is item-heavy.
	nf, _ := ByName("netflix-dsgd-50")
	if nf.Users <= nf.Items {
		t.Fatal("netflix must be user-heavy")
	}
	gl, _ := ByName("glove-100")
	if gl.Items <= gl.Users {
		t.Fatal("glove must be item-heavy")
	}
	r2, _ := ByName("r2-nomad-50")
	if r2.Users <= r2.Items {
		t.Fatal("r2 must be user-heavy")
	}
}

func TestByNameAndNames(t *testing.T) {
	if _, err := ByName("nonsense"); err == nil {
		t.Fatal("expected error for unknown model")
	}
	names := Names()
	if len(names) != 23 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	c, err := ByName(names[0])
	if err != nil || c.Name != names[0] {
		t.Fatalf("ByName round trip failed: %v %v", c, err)
	}
}

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 7 {
		t.Fatalf("expected 7 families, got %d", len(fams))
	}
	for _, fam := range fams {
		models, err := FamilyModels(fam)
		if err != nil {
			t.Fatal(err)
		}
		if len(models) == 0 {
			t.Fatalf("family %s has no models", fam)
		}
		for _, m := range models {
			if !strings.HasPrefix(m.Name, fam+"-") {
				t.Fatalf("model %s not in family %s", m.Name, fam)
			}
		}
	}
	if _, err := FamilyModels("nope"); err == nil {
		t.Fatal("expected unknown-family error")
	}
}

func TestScale(t *testing.T) {
	c := Config{Name: "t", Users: 1000, Items: 500, Factors: 8, TrueClusters: 4}
	s := c.Scale(0.1)
	if s.Users != 100 || s.Items != 50 {
		t.Fatalf("Scale(0.1) = %d users, %d items", s.Users, s.Items)
	}
	if s.Factors != 8 {
		t.Fatal("Scale must not touch factors")
	}
	tiny := c.Scale(0.00001)
	if tiny.Users < 1 || tiny.Items < 1 {
		t.Fatal("Scale must clamp to 1")
	}
	same := c.Scale(0)
	if same.Users != 1000 {
		t.Fatal("non-positive scale must be a no-op")
	}
}

func TestRegimeSeparation(t *testing.T) {
	// The registry's whole purpose: Netflix-like configs must be much less
	// prunable than R2-like configs. Compare 95/50 norm skew.
	nfCfg, _ := ByName("netflix-bpr-10")
	r2Cfg, _ := ByName("r2-nomad-10")
	nf, err := Generate(nfCfg.Scale(0.2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Generate(r2Cfg.Scale(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if r2.NormSkew() < 1.5*nf.NormSkew() {
		t.Fatalf("regimes not separated: netflix skew %.2f, r2 skew %.2f",
			nf.NormSkew(), r2.NormSkew())
	}
}

func TestNormSkewDegenerate(t *testing.T) {
	m := &Model{Items: mat.New(10, 3)}
	if !math.IsInf(m.NormSkew(), 1) {
		t.Fatal("all-zero items should report infinite skew")
	}
}
