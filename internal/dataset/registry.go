package dataset

import (
	"fmt"
	"sort"
)

// The registry mirrors the paper's 23 reference models (§V-A). Row counts
// are scaled from Table I so that the full Fig 5 grid runs in minutes —
// Netflix keeps its users ≫ items shape, KDD and GloVe keep items-heavy
// shapes — and the distributional knobs are set per family to reproduce the
// winner regimes the paper reports:
//
//   - Netflix models: mild norm skew, diffuse users → BMM-friendly
//     (Fig 2 left; BMM wins most Netflix rows of Fig 5).
//   - R2 / KDD models: heavy norm skew, tight user clusters →
//     index-friendly (Fig 2 right; LEMP/MAXIMUS win those rows).
//   - GloVe: many items, moderate skew → mixed winners.
//
// Seeds are fixed per model so every experiment sees identical data.

// family bundles the knobs shared by one dataset family.
type family struct {
	users, items int
	trueClusters int
	userSpread   float64
	normSigma    float64
	itemAlign    float64
}

var families = map[string]family{
	"netflix-dsgd":  {users: 4800, items: 1777, trueClusters: 8, userSpread: 0.60, normSigma: 0.25, itemAlign: 0.20},
	"netflix-nomad": {users: 4800, items: 1777, trueClusters: 8, userSpread: 0.45, normSigma: 0.40, itemAlign: 0.30},
	"netflix-bpr":   {users: 4800, items: 1777, trueClusters: 8, userSpread: 0.80, normSigma: 0.15, itemAlign: 0.10},
	"r2-nomad":      {users: 6000, items: 2700, trueClusters: 10, userSpread: 0.12, normSigma: 0.90, itemAlign: 0.50},
	"kdd-nomad":     {users: 4000, items: 5000, trueClusters: 10, userSpread: 0.15, normSigma: 1.10, itemAlign: 0.50},
	"kdd-ref":       {users: 4000, items: 5000, trueClusters: 10, userSpread: 0.20, normSigma: 0.90, itemAlign: 0.40},
	"glove":         {users: 1000, items: 8700, trueClusters: 12, userSpread: 0.35, normSigma: 0.50, itemAlign: 0.30},
}

var familyFactors = map[string][]int{
	"netflix-dsgd":  {10, 50, 100},
	"netflix-nomad": {10, 25, 50, 100},
	"netflix-bpr":   {10, 25, 50, 100},
	"r2-nomad":      {10, 25, 50, 100},
	"kdd-nomad":     {10, 25, 50, 100},
	"kdd-ref":       {51},
	"glove":         {50, 100, 200},
}

// familyOrder fixes the presentation order used in Fig 5.
var familyOrder = []string{
	"netflix-dsgd", "netflix-nomad", "netflix-bpr",
	"r2-nomad", "kdd-nomad", "kdd-ref", "glove",
}

// Registry returns configs for all 23 reference models in Fig 5 order.
func Registry() []Config {
	var out []Config
	for _, fam := range familyOrder {
		fm := families[fam]
		for _, f := range familyFactors[fam] {
			out = append(out, Config{
				Name:         fmt.Sprintf("%s-%d", fam, f),
				Users:        fm.users,
				Items:        fm.items,
				Factors:      f,
				TrueClusters: fm.trueClusters,
				UserSpread:   fm.userSpread,
				NormSigma:    fm.normSigma,
				ItemAlign:    fm.itemAlign,
				Seed:         seedFor(fam, f),
			})
		}
	}
	return out
}

// seedFor derives a stable per-model seed from the family name and factor
// count.
func seedFor(fam string, f int) int64 {
	var h int64 = 1469598103934665603
	for _, c := range fam {
		h = (h ^ int64(c)) * 1099511628211
	}
	return h*31 + int64(f)
}

// ByName returns the registry config with the given name.
func ByName(name string) (Config, error) {
	for _, c := range Registry() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("dataset: unknown model %q (see Names())", name)
}

// Names lists all registry model names in Fig 5 order.
func Names() []string {
	regs := Registry()
	names := make([]string, len(regs))
	for i, c := range regs {
		names[i] = c.Name
	}
	return names
}

// Families lists the dataset family prefixes in Fig 5 order.
func Families() []string {
	out := make([]string, len(familyOrder))
	copy(out, familyOrder)
	return out
}

// FamilyModels returns the registry configs belonging to one family.
func FamilyModels(fam string) ([]Config, error) {
	if _, ok := families[fam]; !ok {
		known := Families()
		sort.Strings(known)
		return nil, fmt.Errorf("dataset: unknown family %q (known: %v)", fam, known)
	}
	var out []Config
	for _, c := range Registry() {
		if len(c.Name) > len(fam) && c.Name[:len(fam)] == fam && c.Name[len(fam)] == '-' {
			out = append(out, c)
		}
	}
	return out, nil
}
