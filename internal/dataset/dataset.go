// Package dataset generates the synthetic matrix-factorization models that
// stand in for the paper's evaluation datasets (Table I: Netflix Prize,
// Yahoo Music KDD, Yahoo R2, GloVe-Twitter) and their 23 trained models.
//
// The real models are unavailable (proprietary data, hours of training), but
// MIPS solver behaviour is governed by two measurable properties of the
// factor matrices rather than by the raw ratings:
//
//   - the spread of item-vector norms (log-normal with σ = NormSigma here),
//     which determines how much length-based pruning (LEMP, FEXIPRO, and
//     the ‖i‖ factor in MAXIMUS's Equation 3) can discard; and
//   - the angular concentration of users around latent "taste" directions
//     (UserSpread here), which determines MAXIMUS's θb and thus how sharp
//     its cluster-level bound is.
//
// Each reference model maps to a Config with those knobs set to reproduce
// its regime (BMM-friendly vs index-friendly), with user/item counts scaled
// down by a common factor so the full evaluation runs in minutes. The knob
// assignments reproduce the winner patterns of Fig 2 and Fig 5: Netflix-like
// models are BMM-friendly, R2/KDD-like models are index-friendly, GloVe is
// in between.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"optimus/internal/mat"
)

// Config describes one synthetic MF model.
type Config struct {
	// Name identifies the model in reports (e.g. "netflix-dsgd-50").
	Name string
	// Users and Items are the matrix row counts.
	Users, Items int
	// Factors is f, the latent dimensionality.
	Factors int
	// TrueClusters is the number of latent taste directions users are drawn
	// around.
	TrueClusters int
	// UserSpread is the coordinate-wise Gaussian noise added to a user's
	// taste direction; smaller values give tighter angular clusters
	// (smaller θuc, stronger MAXIMUS pruning).
	UserSpread float64
	// NormSigma is the σ of the log-normal item-norm distribution; larger
	// values give heavier norm skew (stronger length-based pruning).
	NormSigma float64
	// ItemAlign in [0,1] blends item directions toward the user taste
	// directions; aligned items make the centroid bound more selective.
	ItemAlign float64
	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.Users < 1:
		return fmt.Errorf("dataset %q: Users = %d, want >= 1", c.Name, c.Users)
	case c.Items < 1:
		return fmt.Errorf("dataset %q: Items = %d, want >= 1", c.Name, c.Items)
	case c.Factors < 1:
		return fmt.Errorf("dataset %q: Factors = %d, want >= 1", c.Name, c.Factors)
	case c.TrueClusters < 1:
		return fmt.Errorf("dataset %q: TrueClusters = %d, want >= 1", c.Name, c.TrueClusters)
	case c.UserSpread < 0:
		return fmt.Errorf("dataset %q: negative UserSpread", c.Name)
	case c.NormSigma < 0:
		return fmt.Errorf("dataset %q: negative NormSigma", c.Name)
	case c.ItemAlign < 0 || c.ItemAlign > 1:
		return fmt.Errorf("dataset %q: ItemAlign %v outside [0,1]", c.Name, c.ItemAlign)
	}
	return nil
}

// Model is a generated user/item factor pair.
type Model struct {
	Config Config
	Users  *mat.Matrix
	Items  *mat.Matrix
}

// Generate materializes the model described by cfg.
func Generate(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := cfg.Factors

	// Latent taste directions on the unit sphere.
	tastes := mat.New(cfg.TrueClusters, f)
	for c := 0; c < cfg.TrueClusters; c++ {
		row := tastes.Row(c)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if mat.Normalize(row) == 0 {
			row[0] = 1
		}
	}

	users := mat.New(cfg.Users, f)
	for i := 0; i < cfg.Users; i++ {
		taste := tastes.Row(rng.Intn(cfg.TrueClusters))
		row := users.Row(i)
		for j := 0; j < f; j++ {
			row[j] = taste[j] + rng.NormFloat64()*cfg.UserSpread
		}
		// User magnitudes vary mildly, as trained MF factors do.
		mat.Scale(row, math.Exp(rng.NormFloat64()*0.25))
	}

	items := mat.New(cfg.Items, f)
	dir := make([]float64, f)
	for i := 0; i < cfg.Items; i++ {
		taste := tastes.Row(rng.Intn(cfg.TrueClusters))
		for j := 0; j < f; j++ {
			iso := rng.NormFloat64()
			dir[j] = cfg.ItemAlign*taste[j] + (1-cfg.ItemAlign)*iso
		}
		if mat.Normalize(dir) == 0 {
			dir[0] = 1
		}
		norm := math.Exp(rng.NormFloat64() * cfg.NormSigma)
		row := items.Row(i)
		for j := 0; j < f; j++ {
			row[j] = dir[j] * norm
		}
	}
	return &Model{Config: cfg, Users: users, Items: items}, nil
}

// Scale returns a copy of cfg with user and item counts multiplied by s
// (minimum 1 each). Factors and distributional knobs are untouched — the
// regime survives scaling.
func (c Config) Scale(s float64) Config {
	if s <= 0 {
		return c
	}
	c.Users = scaleCount(c.Users, s)
	c.Items = scaleCount(c.Items, s)
	return c
}

func scaleCount(n int, s float64) int {
	v := int(math.Round(float64(n) * s))
	if v < 1 {
		return 1
	}
	return v
}

// NormSkew summarizes the item-norm distribution of a model: the ratio of
// the 95th to the 50th percentile norm. Diagnostic for tests and reports.
func (m *Model) NormSkew() float64 {
	norms := m.Items.RowNorms()
	sort.Float64s(norms)
	p50 := norms[len(norms)/2]
	p95 := norms[(len(norms)*95)/100]
	if p50 == 0 {
		return math.Inf(1)
	}
	return p95 / p50
}
