// Package fexipro re-implements the FEXIPRO index of Li et al. (SIGMOD 2017),
// the second state-of-the-art exact MIPS baseline the paper benchmarks
// (§II-C, §VI). FEXIPRO is a point-query index: each user's top-K is answered
// independently by walking the items in descending-norm order and discarding
// candidates with a cascade of cheap upper bounds, cheapest first:
//
//  1. Length bound: u·i ≤ ‖u‖·‖i‖; since items are norm-sorted the walk
//     terminates outright once this fails.
//  2. Integer bound (I): vectors are quantized to int32; the quantized dot
//     product plus exact rounding-error norms gives a provable upper bound
//     computed in integer arithmetic.
//  3. SVD partial bound (S): users and items are rotated into the eigenbasis
//     of the item Gram matrix, concentrating energy in leading coordinates;
//     a partial dot over the leading h coordinates plus a Cauchy–Schwarz
//     bound on the tail usually decides the candidate.
//  4. Reduction bound (R, SIR variant only): items are shifted coordinate-
//     wise to be non-negative, so the tail is additionally bounded by
//     (max positive user coordinate) × (item tail sum) — a monotonicity
//     bound that is sometimes tighter than Cauchy–Schwarz.
//
// Candidates surviving all bounds get an exact score by completing the
// partial dot in the rotated space (the rotation is orthogonal, so rotated
// dots equal original dots). The two configurations benchmarked in the paper
// are FEXIPRO-SI (bounds 1–3) and FEXIPRO-SIR (bounds 1–4).
package fexipro

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"optimus/internal/blas"
	"optimus/internal/mat"
	"optimus/internal/mips"
	"optimus/internal/parallel"
	"optimus/internal/svd"
	"optimus/internal/topk"
)

// Variant selects the pruning cascade.
type Variant int

// FEXIPRO variants from the paper's evaluation.
const (
	SI  Variant = iota // SVD + integer pruning
	SIR                // SVD + integer + reduction pruning
)

// String returns the variant name used in the paper.
func (v Variant) String() string {
	if v == SIR {
		return "FEXIPRO-SIR"
	}
	return "FEXIPRO-SI"
}

// Config controls index construction.
type Config struct {
	// Variant selects SI (default) or SIR.
	Variant Variant
	// EnergyFraction picks the partial-dot split h: the smallest prefix of
	// eigen-directions whose eigenvalues cover this fraction of total
	// spectrum energy. Default 0.7, the regime FEXIPRO's own evaluation
	// uses.
	EnergyFraction float64
	// QuantLevels is the integer quantization range: coordinates map to
	// [-QuantLevels, QuantLevels]. Default 2048.
	QuantLevels int
	// Threads parallelizes Query/QueryAll across users.
	Threads int
}

// DefaultConfig mirrors the tuning used for the paper's benchmarks.
func DefaultConfig() Config {
	return Config{Variant: SI, EnergyFraction: 0.7, QuantLevels: 2048, Threads: 1}
}

// Index is a built FEXIPRO index, read-only after Build and safe for
// concurrent queries.
type Index struct {
	cfg Config

	f int // latent factors
	h int // partial-dot split

	// Retained Build inputs and rotation, for the mutable-corpus lifecycle:
	// item mutation falls back to a rebuild over the retained corpus (every
	// index structure here — the rotation itself, the quantization scales,
	// the reduction shifts — is a whole-corpus artifact, so FEXIPRO has no
	// cheap patch), while user arrival is incremental through the stored
	// eigenbasis. gen is the mips.ItemMutator mutation stamp.
	users, items *mat.Matrix
	eig          *svd.Eigen
	gen          uint64

	// Items in descending-norm order.
	ids      []int       // sorted position -> original item id
	norms    []float64   // ‖i‖, non-increasing
	tItems   *mat.Matrix // rotated items, sorted order
	itemTail []float64   // ‖ti[h:]‖ per sorted item
	qItems   []int32     // quantized rotated items, one n×f slab
	itemErr  []float64   // ‖ti - qi/si‖ per sorted item
	scaleI   float64

	// Reduction (SIR) state.
	shift    []float64 // per-coordinate shift making item tails non-negative
	tailSums []float64 // Σ_{j>=h} (ti[j]+shift[j]) per sorted item

	// Users, rotated and quantized at Build (FEXIPRO preprocesses the whole
	// query matrix in its batch setting).
	tUsers   *mat.Matrix
	userNorm []float64
	qUsers   []int32
	userErr  []float64 // ‖tu - qu/su‖
	qUNorm   []float64 // ‖qu/su‖, the norm the integer bound needs
	scaleU   float64
	uTailC   []float64 // Σ_{j>=h} tu[j]·shift[j] per user (SIR)
	uMaxPos  []float64 // max(0, max_{j>=h} tu[j]) per user (SIR)

	buildTime time.Duration
}

// New returns an unbuilt FEXIPRO index. Zero-valued fields fall back to
// DefaultConfig values.
func New(cfg Config) *Index {
	def := DefaultConfig()
	if cfg.EnergyFraction <= 0 || cfg.EnergyFraction > 1 {
		cfg.EnergyFraction = def.EnergyFraction
	}
	if cfg.QuantLevels <= 0 {
		cfg.QuantLevels = def.QuantLevels
	}
	cfg.Threads = parallel.Resolve(cfg.Threads)
	return &Index{cfg: cfg}
}

// SetThreads implements mips.ThreadSetter: it adjusts query parallelism on
// the built index (n <= 0 selects the package-wide default).
func (x *Index) SetThreads(n int) { x.cfg.Threads = parallel.Resolve(n) }

// Name implements mips.Solver.
func (x *Index) Name() string { return x.cfg.Variant.String() }

// Batches implements mips.Solver; FEXIPRO is a point-query index — the
// property that lets OPTIMUS apply its incremental t-test (§IV-A).
func (x *Index) Batches() bool { return false }

// NumUsers implements mips.Sized.
func (x *Index) NumUsers() int {
	if x.tUsers == nil {
		return 0
	}
	return x.tUsers.Rows()
}

// NumItems implements mips.Sized.
func (x *Index) NumItems() int { return len(x.ids) }

// BuildTime returns the wall-clock cost of the last Build call.
func (x *Index) BuildTime() time.Duration { return x.buildTime }

// SplitH returns the partial-dot split chosen at Build.
func (x *Index) SplitH() int { return x.h }

// Build implements mips.Solver.
func (x *Index) Build(users, items *mat.Matrix) error {
	start := time.Now()
	if err := mips.ValidateInputs(users, items); err != nil {
		return err
	}
	f := items.Cols()

	// Rotation from the item Gram spectrum. Decompose is the only fallible
	// step below; no receiver state may be written before it succeeds, or a
	// failed Build — and therefore a failed AddItems/RemoveItems rebuild,
	// which routes through Build — would strand a half-updated index,
	// breaking the ItemMutator error-atomicity contract.
	eig, err := svd.Decompose(svd.Gram(items))
	if err != nil {
		return fmt.Errorf("fexipro: eigendecomposition: %w", err)
	}
	x.f = f
	x.users, x.items = users, items
	x.gen = 0
	x.eig = eig
	var total float64
	for _, v := range eig.Values {
		if v > 0 {
			total += v
		}
	}
	x.h = f
	if total > 0 {
		var cum float64
		for j, v := range eig.Values {
			if v > 0 {
				cum += v
			}
			if cum >= x.cfg.EnergyFraction*total {
				x.h = j + 1
				break
			}
		}
	}
	if x.h < 1 {
		x.h = 1
	}
	if x.h > f {
		x.h = f
	}

	// Sort items by norm descending (ties by id for determinism).
	n := items.Rows()
	norms := items.RowNorms()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if norms[order[a]] != norms[order[b]] {
			return norms[order[a]] > norms[order[b]]
		}
		return order[a] < order[b]
	})
	x.ids = order
	x.norms = make([]float64, n)
	for s, id := range order {
		x.norms[s] = norms[id]
	}
	x.tItems = eig.TransformMatrix(items.SelectRows(order))
	x.tUsers = eig.TransformMatrix(users)

	// Tail norms at the split.
	x.itemTail = make([]float64, n)
	for s := 0; s < n; s++ {
		x.itemTail[s] = mat.Norm(x.tItems.Row(s)[x.h:])
	}

	// Integer quantization (both matrices, global per-matrix scale).
	x.scaleI = quantScale(x.tItems.MaxAbs(), x.cfg.QuantLevels)
	x.qItems, x.itemErr = quantize(x.tItems, x.scaleI)
	x.scaleU = quantScale(x.tUsers.MaxAbs(), x.cfg.QuantLevels)
	var qunorm []float64
	x.qUsers, x.userErr = quantize(x.tUsers, x.scaleU)
	qunorm = make([]float64, users.Rows())
	for u := 0; u < users.Rows(); u++ {
		q := x.qUsers[u*f : (u+1)*f]
		var ss float64
		for _, v := range q {
			fv := float64(v) / x.scaleU
			ss += fv * fv
		}
		qunorm[u] = math.Sqrt(ss)
	}
	x.qUNorm = qunorm
	x.userNorm = users.RowNorms()

	// Reduction transform (SIR): shift item tail coordinates non-negative.
	if x.cfg.Variant == SIR {
		x.shift = make([]float64, f)
		for j := x.h; j < f; j++ {
			mn := math.Inf(1)
			for s := 0; s < n; s++ {
				if v := x.tItems.At(s, j); v < mn {
					mn = v
				}
			}
			if mn < 0 {
				x.shift[j] = -mn
			}
		}
		x.tailSums = make([]float64, n)
		for s := 0; s < n; s++ {
			row := x.tItems.Row(s)
			var sum float64
			for j := x.h; j < f; j++ {
				sum += row[j] + x.shift[j]
			}
			x.tailSums[s] = sum
		}
		x.uTailC = make([]float64, users.Rows())
		x.uMaxPos = make([]float64, users.Rows())
		for u := 0; u < users.Rows(); u++ {
			row := x.tUsers.Row(u)
			var c, mp float64
			for j := x.h; j < f; j++ {
				c += row[j] * x.shift[j]
				if row[j] > mp {
					mp = row[j]
				}
			}
			x.uTailC[u] = c
			x.uMaxPos[u] = mp
		}
	} else {
		x.shift, x.tailSums, x.uTailC, x.uMaxPos = nil, nil, nil, nil
	}

	x.buildTime = time.Since(start)
	return nil
}

func quantScale(maxAbs float64, levels int) float64 {
	if maxAbs == 0 {
		return 1
	}
	return float64(levels) / maxAbs
}

// quantize maps every coordinate to round(v*scale) and records each row's
// exact quantization error norm ‖row - q/scale‖.
func quantize(m *mat.Matrix, scale float64) ([]int32, []float64) {
	rows, cols := m.Rows(), m.Cols()
	q := make([]int32, rows*cols)
	errs := make([]float64, rows)
	for r := 0; r < rows; r++ {
		row := m.Row(r)
		var ss float64
		base := r * cols
		for j, v := range row {
			qv := int32(math.Round(v * scale))
			q[base+j] = qv
			d := v - float64(qv)/scale
			ss += d * d
		}
		errs[r] = math.Sqrt(ss)
	}
	return q, errs
}

// Query implements mips.Solver.
func (x *Index) Query(userIDs []int, k int) ([][]topk.Entry, error) {
	return x.query(nil, userIDs, k, nil, nil)
}

// QueryWithFloors implements mips.ThresholdQuerier: each user's heap is
// seeded with its floor, so the whole bound cascade — the norm-sorted walk
// break, the integer bound, the SVD partial bound — prunes against the floor
// from the very first candidate instead of waiting for the heap to fill.
// FEXIPRO's sequential-scan prune has the same threshold structure as
// LEMP's, so the identical seeding applies. Results honor the floor contract
// (see mips.ThresholdQuerier).
func (x *Index) QueryWithFloors(userIDs []int, k int, floors []float64) ([][]topk.Entry, error) {
	if err := mips.ValidateFloors(userIDs, floors); err != nil {
		return nil, err
	}
	return x.query(nil, userIDs, k, floors, nil)
}

// QueryWithFloorBoard implements mips.LiveFloorQuerier: the norm-sorted scan
// re-polls the user's board cell every floorPollInterval items, so floors
// raised by concurrently finishing shards tighten the whole bound cascade —
// the norm-walk break, the integer bound, the SVD partial bound — mid-scan.
func (x *Index) QueryWithFloorBoard(userIDs []int, k int, board *topk.FloorBoard) ([][]topk.Entry, error) {
	if err := mips.ValidateFloorBoard(userIDs, board); err != nil {
		return nil, err
	}
	return x.query(nil, userIDs, k, nil, board)
}

// QueryCtx implements mips.CancellableQuerier: ctx is polled once per user
// and every floorPollInterval items of the sequential scan — the same cadence
// the live floor board is re-polled at.
func (x *Index) QueryCtx(ctx context.Context, userIDs []int, k int, opts mips.QueryOptions) ([][]topk.Entry, error) {
	if err := mips.ValidateQueryOptions(userIDs, opts); err != nil {
		return nil, err
	}
	return x.query(ctx, userIDs, k, opts.Floors, opts.Board)
}

func (x *Index) query(ctx context.Context, userIDs []int, k int, floors []float64, board *topk.FloorBoard) ([][]topk.Entry, error) {
	if x.tItems == nil {
		return nil, fmt.Errorf("fexipro: Query before Build")
	}
	if err := mips.ValidateK(k, x.tItems.Rows()); err != nil {
		return nil, err
	}
	out := make([][]topk.Entry, len(userIDs))
	run := func(lo, hi int) error {
		for qi := lo; qi < hi; qi++ {
			if err := mips.CtxErr(ctx); err != nil {
				return err
			}
			u := userIDs[qi]
			if u < 0 || u >= x.tUsers.Rows() {
				return fmt.Errorf("fexipro: user id %d out of range [0,%d)", u, x.tUsers.Rows())
			}
			floor := math.Inf(-1)
			if floors != nil {
				floor = floors[qi]
			} else if board != nil {
				floor = board.Floor(qi)
			}
			out[qi] = x.queryOne(ctx, u, k, floor, board, qi)
		}
		return nil
	}
	if err := parallel.ForErrCtx(ctx, x.cfg.Threads, len(userIDs), queryGrain, run); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryAll implements mips.Solver.
func (x *Index) QueryAll(k int) ([][]topk.Entry, error) {
	if x.tUsers == nil {
		return nil, fmt.Errorf("fexipro: QueryAll before Build")
	}
	return x.Query(mips.AllUserIDs(x.tUsers.Rows()), k)
}

// queryOne answers one user's top-k, pruning against floor (-Inf = none)
// from the first candidate: a seeded heap reports its floor as the threshold
// before it fills, so every `full` guard below fires immediately. With a live
// board (nil = static floors), cell is the user's board index and the scan
// re-polls it every floorPollInterval items.
func (x *Index) queryOne(ctx context.Context, u, k int, floor float64, board *topk.FloorBoard, cell int) []topk.Entry {
	f := x.f
	tu := x.tUsers.Row(u)
	tuHead := tu[:x.h]
	tuTail := tu[x.h:]
	tailNormU := mat.Norm(tuTail)
	unorm := x.userNorm[u]
	qu := x.qUsers[u*f : (u+1)*f]
	eU := x.userErr[u]
	qnU := x.qUNorm[u]
	sir := x.cfg.Variant == SIR

	h := topk.NewSeeded(k, floor)
	n := x.tItems.Rows()
	poll := 0
	for s := 0; s < n; s++ {
		if board != nil || ctx != nil {
			if poll == 0 {
				if board != nil {
					h.RaiseFloor(board.Floor(cell))
				}
				// Cancelled: abandon the scan; the partial heap is discarded
				// by the caller's per-user ctx poll.
				if ctx != nil && ctx.Err() != nil {
					break
				}
				poll = floorPollInterval
			}
			poll--
		}
		thr, full := h.Threshold()
		sl := slack(thr)
		if full && unorm*x.norms[s] < thr-sl {
			break // norm-sorted: every remaining item is bounded lower
		}
		// Integer bound: u·i ≤ qu·qi/(su·si) + ‖qu/su‖·eI + eU·‖i‖.
		if full {
			qi := x.qItems[s*f : (s+1)*f]
			ib := float64(intDot(qu, qi))/(x.scaleU*x.scaleI) +
				qnU*x.itemErr[s] + eU*x.norms[s]
			if ib < thr-sl {
				continue
			}
		}
		row := x.tItems.Row(s)
		p := blas.Dot(tuHead, row[:x.h])
		if full {
			ub := p + tailNormU*x.itemTail[s]
			if sir {
				if rb := p + x.uMaxPos[u]*x.tailSums[s] - x.uTailC[u]; rb < ub {
					ub = rb
				}
			}
			if ub < thr-sl {
				continue
			}
		}
		h.Push(x.ids[s], p+blas.Dot(tuTail, row[x.h:]))
	}
	return h.Sorted()
}

// intDot is the integer kernel of the I-pruning step: an int64-accumulated
// dot of two quantized vectors.
func intDot(a, b []int32) int64 {
	var s int64
	for i, v := range a {
		s += int64(v) * int64(b[i])
	}
	return s
}

// intBound exposes the integer upper bound for the property tests: the bound
// for user u against the item at sorted position s, alongside the true
// (rotated) inner product.
func (x *Index) intBound(u, s int) (bound, truth float64) {
	f := x.f
	qu := x.qUsers[u*f : (u+1)*f]
	qi := x.qItems[s*f : (s+1)*f]
	bound = float64(intDot(qu, qi))/(x.scaleU*x.scaleI) +
		x.qUNorm[u]*x.itemErr[s] + x.userErr[u]*x.norms[s]
	truth = blas.Dot(x.tUsers.Row(u), x.tItems.Row(s))
	return bound, truth
}

// svdBound exposes the S (and, for SIR, R) upper bound for the property
// tests.
func (x *Index) svdBound(u, s int) (bound, truth float64) {
	tu := x.tUsers.Row(u)
	row := x.tItems.Row(s)
	p := blas.Dot(tu[:x.h], row[:x.h])
	bound = p + mat.Norm(tu[x.h:])*x.itemTail[s]
	if x.cfg.Variant == SIR {
		if rb := p + x.uMaxPos[u]*x.tailSums[s] - x.uTailC[u]; rb < bound {
			bound = rb
		}
	}
	truth = blas.Dot(tu, row)
	return bound, truth
}

func slack(thr float64) float64 {
	return 1e-9 * (1 + math.Abs(thr))
}

// queryGrain is the per-user chunk size handed to the shared parallel
// worker pool (internal/parallel): small enough to load-balance the very
// skewed per-user bound-cascade costs, large enough to amortize dispatch.
const queryGrain = 64

// floorPollInterval is how many norm-sorted scan positions pass between
// FloorBoard re-polls in a live-floor query: frequent enough that a raised
// floor cuts most of the remaining scan, rare enough that the atomic load
// never shows up next to the integer-bound kernel.
const floorPollInterval = 128
