package fexipro

import (
	"fmt"
	"math"

	"optimus/internal/mat"
	"optimus/internal/mips"
)

// Item mutation (the mutable-corpus lifecycle). FEXIPRO is the one index in
// the repository with no incremental patch: its rotation is the eigenbasis
// of the *item* Gram matrix, its quantization scales are per-matrix maxima,
// and the SIR shifts are per-coordinate item minima — every one a
// whole-corpus artifact that a single arrival can invalidate. The ItemMutator
// implementation therefore falls back to a rebuild over the retained,
// mutated corpus: correct, contract-complete, and honest about cost (the
// shard layer's dirty-shard routing confines the rebuild to the owning
// shard; the churn benchmark reports it as the no-patch baseline).

// AddItems implements mips.ItemMutator by rebuilding over the appended
// corpus (see the package's mutation note above).
func (x *Index) AddItems(items *mat.Matrix) ([]int, error) {
	if x.tItems == nil {
		return nil, fmt.Errorf("fexipro: AddItems before Build")
	}
	if err := mips.ValidateAddItems(items, x.f); err != nil {
		return nil, err
	}
	base := x.items.Rows()
	gen := x.gen
	if err := x.Build(x.users, mat.AppendRows(x.items, items)); err != nil {
		return nil, err
	}
	x.gen = gen + 1
	return mips.IDRange(base, items.Rows()), nil
}

// RemoveItems implements mips.ItemMutator by rebuilding over the compacted
// corpus.
func (x *Index) RemoveItems(ids []int) error {
	if x.tItems == nil {
		return fmt.Errorf("fexipro: RemoveItems before Build")
	}
	sorted, err := mips.ValidateRemoveIDs(ids, x.items.Rows())
	if err != nil {
		return err
	}
	gen := x.gen
	if err := x.Build(x.users, mat.RemoveRows(x.items, sorted)); err != nil {
		return err
	}
	x.gen = gen + 1
	return nil
}

// Generation implements mips.ItemMutator.
func (x *Index) Generation() uint64 { return x.gen }

// AddUsers implements mips.UserAdder, incrementally: new users are rotated
// through the stored eigenbasis and quantized at the Build-time user scale.
// A fresh Build might pick a different scale (it is the matrix max), but the
// integer bound carries each row's exact quantization error at whatever
// scale quantized it, so the bound — and therefore exactness — holds at any
// scale; only bound tightness could differ.
func (x *Index) AddUsers(users *mat.Matrix) ([]int, error) {
	if x.tUsers == nil {
		return nil, fmt.Errorf("fexipro: AddUsers before Build")
	}
	if err := mips.ValidateAddUsers(users, x.f); err != nil {
		return nil, err
	}
	base := x.tUsers.Rows()
	tNew := x.eig.TransformMatrix(users)
	qNew, errNew := quantize(tNew, x.scaleU)
	for u := 0; u < users.Rows(); u++ {
		q := qNew[u*x.f : (u+1)*x.f]
		var ss float64
		for _, v := range q {
			fv := float64(v) / x.scaleU
			ss += fv * fv
		}
		x.qUNorm = append(x.qUNorm, math.Sqrt(ss))
	}
	x.tUsers = mat.AppendRows(x.tUsers, tNew)
	x.qUsers = append(x.qUsers, qNew...)
	x.userErr = append(x.userErr, errNew...)
	x.userNorm = append(x.userNorm, users.RowNorms()...)
	if x.cfg.Variant == SIR {
		for u := 0; u < users.Rows(); u++ {
			row := tNew.Row(u)
			var c, mp float64
			for j := x.h; j < x.f; j++ {
				c += row[j] * x.shift[j]
				if row[j] > mp {
					mp = row[j]
				}
			}
			x.uTailC = append(x.uTailC, c)
			x.uMaxPos = append(x.uMaxPos, mp)
		}
	}
	x.users = mat.AppendRows(x.users, users)
	return mips.IDRange(base, users.Rows()), nil
}
