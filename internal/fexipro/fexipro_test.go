package fexipro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optimus/internal/mat"
	"optimus/internal/mips"
	"optimus/internal/topk"
)

// testModel builds correlated inputs (so the SVD split is meaningful) with
// log-normal item-norm skew (so length pruning fires).
func testModel(rng *rand.Rand, nUsers, nItems, f int) (*mat.Matrix, *mat.Matrix) {
	users := mat.New(nUsers, f)
	items := mat.New(nItems, f)
	fill := func(m *mat.Matrix, scaleRows bool) {
		for i := 0; i < m.Rows(); i++ {
			base := rng.NormFloat64()
			scale := 1.0
			if scaleRows {
				scale = math.Exp(rng.NormFloat64() * 0.8)
			}
			row := m.Row(i)
			for j := range row {
				row[j] = (base + rng.NormFloat64()*0.5) * scale
			}
		}
	}
	fill(users, false)
	fill(items, true)
	return users, items
}

func TestBuildValidation(t *testing.T) {
	x := New(Config{})
	if err := x.Build(nil, nil); err == nil {
		t.Fatal("expected error for nil inputs")
	}
	if err := x.Build(mat.New(3, 2), mat.New(3, 5)); err == nil {
		t.Fatal("expected error for factor mismatch")
	}
}

func TestQueryBeforeBuild(t *testing.T) {
	x := New(Config{})
	if _, err := x.Query([]int{0}, 1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := x.QueryAll(1); err == nil {
		t.Fatal("expected error")
	}
}

func TestVariantNames(t *testing.T) {
	if New(Config{Variant: SI}).Name() != "FEXIPRO-SI" {
		t.Fatal("SI name wrong")
	}
	if New(Config{Variant: SIR}).Name() != "FEXIPRO-SIR" {
		t.Fatal("SIR name wrong")
	}
	if New(Config{}).Batches() {
		t.Fatal("FEXIPRO must be a point-query (non-batching) solver")
	}
	var _ mips.Solver = New(Config{})
}

// TestExactness: both variants must return true top-K for every user.
func TestExactness(t *testing.T) {
	for _, variant := range []Variant{SI, SIR} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				nUsers := 3 + rng.Intn(8)
				nItems := 5 + rng.Intn(60)
				dim := 2 + rng.Intn(20)
				users, items := testModel(rng, nUsers, nItems, dim)
				x := New(Config{Variant: variant})
				if err := x.Build(users, items); err != nil {
					return false
				}
				k := 1 + rng.Intn(minInt(5, nItems))
				got, err := x.QueryAll(k)
				if err != nil {
					return false
				}
				return mips.VerifyAll(users, items, got, k, 1e-8) == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIntegerBoundIsUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users, items := testModel(rng, 4, 25, 3+rng.Intn(12))
		x := New(Config{QuantLevels: 64}) // coarse quantization stresses the bound
		if err := x.Build(users, items); err != nil {
			return false
		}
		for u := 0; u < users.Rows(); u++ {
			for s := 0; s < items.Rows(); s++ {
				bound, truth := x.intBound(u, s)
				if bound < truth-1e-9*(1+math.Abs(truth)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDBoundIsUpperBound(t *testing.T) {
	for _, variant := range []Variant{SI, SIR} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				users, items := testModel(rng, 4, 25, 3+rng.Intn(12))
				x := New(Config{Variant: variant, EnergyFraction: 0.5})
				if err := x.Build(users, items); err != nil {
					return false
				}
				for u := 0; u < users.Rows(); u++ {
					for s := 0; s < items.Rows(); s++ {
						bound, truth := x.svdBound(u, s)
						if bound < truth-1e-9*(1+math.Abs(truth)) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSplitRespectsEnergyFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	users, items := testModel(rng, 20, 200, 24)
	// Highly correlated data: a small prefix carries 70% of energy.
	x := New(Config{EnergyFraction: 0.7})
	if err := x.Build(users, items); err != nil {
		t.Fatal(err)
	}
	if x.SplitH() < 1 || x.SplitH() > 24 {
		t.Fatalf("split h = %d out of range", x.SplitH())
	}
	if x.SplitH() > 12 {
		t.Fatalf("correlated data should concentrate energy: h = %d", x.SplitH())
	}
	// EnergyFraction = 1 must keep every dimension.
	full := New(Config{EnergyFraction: 1.0})
	if err := full.Build(users, items); err != nil {
		t.Fatal(err)
	}
	if full.SplitH() != 24 {
		t.Fatalf("full energy split h = %d, want 24", full.SplitH())
	}
}

func TestAgreesWithNaiveScores(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	users, items := testModel(rng, 30, 120, 10)
	x := New(Config{Variant: SIR})
	if err := x.Build(users, items); err != nil {
		t.Fatal(err)
	}
	naive := mips.NewNaive()
	if err := naive.Build(users, items); err != nil {
		t.Fatal(err)
	}
	got, err := x.QueryAll(7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.QueryAll(7)
	if err != nil {
		t.Fatal(err)
	}
	for u := range want {
		// Items may be permuted among exact-score ties (rotation perturbs
		// float ties), so compare the score sequences.
		for r := range want[u] {
			if math.Abs(got[u][r].Score-want[u][r].Score) > 1e-8*(1+math.Abs(want[u][r].Score)) {
				t.Fatalf("user %d rank %d: score %v, want %v", u, r, got[u][r].Score, want[u][r].Score)
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	users, items := testModel(rng, 120, 150, 8)
	serial := New(Config{Threads: 1})
	parallel := New(Config{Threads: 4})
	if err := serial.Build(users, items); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Build(users, items); err != nil {
		t.Fatal(err)
	}
	a, err := serial.QueryAll(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.QueryAll(5)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a {
		if !topk.Equal(a[u], b[u], 0) {
			t.Fatalf("user %d differs across thread counts", u)
		}
	}
}

func TestBadInputsAtQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	users, items := testModel(rng, 5, 20, 6)
	x := New(Config{})
	if err := x.Build(users, items); err != nil {
		t.Fatal(err)
	}
	if _, err := x.QueryAll(0); err == nil {
		t.Fatal("expected k=0 error")
	}
	if _, err := x.QueryAll(21); err == nil {
		t.Fatal("expected k>|I| error")
	}
	if _, err := x.Query([]int{5}, 1); err == nil {
		t.Fatal("expected user-range error")
	}
}

func TestRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	users1, items1 := testModel(rng, 10, 30, 6)
	users2, items2 := testModel(rng, 6, 15, 4)
	x := New(Config{Variant: SIR})
	if err := x.Build(users1, items1); err != nil {
		t.Fatal(err)
	}
	if err := x.Build(users2, items2); err != nil {
		t.Fatal(err)
	}
	got, err := x.QueryAll(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := mips.VerifyAll(users2, items2, got, 3, 1e-8); err != nil {
		t.Fatal(err)
	}
	if x.BuildTime() <= 0 {
		t.Fatal("BuildTime must be recorded")
	}
}

func TestZeroItemsMatrixDegenerate(t *testing.T) {
	// All-zero items: every score is 0; exactness must still hold.
	users := mat.New(3, 4)
	items := mat.New(10, 4)
	for i := range users.Data() {
		users.Data()[i] = 1
	}
	x := New(Config{})
	if err := x.Build(users, items); err != nil {
		t.Fatal(err)
	}
	got, err := x.QueryAll(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := mips.VerifyAll(users, items, got, 2, 1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := mat.New(5, 7)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	scale := quantScale(m.MaxAbs(), 2048)
	q, errs := quantize(m, scale)
	if len(q) != 35 || len(errs) != 5 {
		t.Fatal("quantize output shapes wrong")
	}
	for r := 0; r < 5; r++ {
		var ss float64
		for j := 0; j < 7; j++ {
			d := m.At(r, j) - float64(q[r*7+j])/scale
			ss += d * d
			// Each coordinate error is at most half a quantization step.
			if math.Abs(d) > 0.5/scale+1e-15 {
				t.Fatalf("coordinate error %v exceeds half-step %v", d, 0.5/scale)
			}
		}
		if math.Abs(errs[r]-math.Sqrt(ss)) > 1e-12 {
			t.Fatalf("row %d error norm mismatch", r)
		}
	}
	if quantScale(0, 100) != 1 {
		t.Fatal("zero max must give scale 1")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
