package fexipro

import (
	"fmt"
	"io"
	"math"

	"optimus/internal/mat"
	"optimus/internal/mips"
	"optimus/internal/persist"
	"optimus/internal/svd"
)

// Kind is FEXIPRO's snapshot kind string (both variants; the variant is in
// the stream).
const Kind = "FEXIPRO"

func init() {
	persist.Register(Kind, func() persist.LoadSaver { return New(Config{}) })
}

// Save implements mips.Persister. The snapshot stores the expensive
// whole-corpus artifacts — the eigenbasis, the rotated matrices, the
// quantization scales — plus the config that shaped them. Everything else
// (tail norms, the int32 quantization slabs, the SIR shift machinery) is a
// deterministic projection of those artifacts and is re-derived at Load: a
// restore is one pass over the rotated matrices instead of a Jacobi
// eigendecomposition and two dense rotations.
//
// scaleU is stored verbatim rather than recomputed: AddUsers quantizes new
// arrivals at the Build-time scale, so after user growth the stored scale
// is no longer a function of the current tUsers.
func (x *Index) Save(w io.Writer) error {
	if x.tItems == nil {
		return fmt.Errorf("fexipro: Save before Build")
	}
	pw, err := persist.NewWriter(w, Kind)
	if err != nil {
		return err
	}
	pw.Section("fexipro", func(e *persist.Encoder) {
		e.U64(x.gen)
		e.U8(uint8(x.cfg.Variant))
		e.Int(x.h)
		e.F64(x.cfg.EnergyFraction)
		e.Int(x.cfg.QuantLevels)
		e.F64(x.scaleI)
		e.F64(x.scaleU)
		e.Matrix(x.users)
		e.Matrix(x.items)
		e.Ints(x.ids)
		e.F64s(x.norms)
	})
	pw.Section("eigen", func(e *persist.Encoder) {
		e.F64s(x.eig.Values)
		e.Matrix(x.eig.Vectors)
	})
	pw.Section("rotated", func(e *persist.Encoder) {
		e.Matrix(x.tItems)
		e.Matrix(x.tUsers)
	})
	return pw.Close()
}

// Load implements mips.Persister. Variant, EnergyFraction, and QuantLevels
// come from the snapshot — they shaped the stored index and govern any
// future mutation rebuild — while Threads stays with the receiver.
func (x *Index) Load(r io.Reader) error {
	pr, err := persist.NewReader(r, Kind)
	if err != nil {
		return err
	}
	d := pr.Section("fexipro")
	gen := d.U64()
	variant := Variant(d.U8())
	h := d.Int()
	energy := d.F64()
	quantLevels := d.Int()
	scaleI := d.F64()
	scaleU := d.F64()
	users := d.Matrix()
	items := d.Matrix()
	ids := d.Ints()
	norms := d.F64s()
	if err := d.Err(); err != nil {
		return err
	}
	d = pr.Section("eigen")
	eigValues := d.F64s()
	eigVectors := d.Matrix()
	if err := d.Err(); err != nil {
		return err
	}
	d = pr.Section("rotated")
	tItems := d.Matrix()
	tUsers := d.Matrix()
	if err := d.Err(); err != nil {
		return err
	}
	if err := pr.Close(); err != nil {
		return err
	}

	if err := mips.ValidateInputs(users, items); err != nil {
		return err
	}
	n, f := items.Rows(), items.Cols()
	nUsers := users.Rows()
	if variant != SI && variant != SIR {
		return fmt.Errorf("fexipro: snapshot variant %d unknown", variant)
	}
	if h < 1 || h > f {
		return fmt.Errorf("fexipro: snapshot split h=%d invalid for %d factors", h, f)
	}
	if !(energy > 0 && energy <= 1) {
		return fmt.Errorf("fexipro: snapshot energy fraction %v out of range", energy)
	}
	if quantLevels < 1 {
		return fmt.Errorf("fexipro: snapshot quant levels %d out of range", quantLevels)
	}
	if !(scaleI > 0) || !(scaleU > 0) || math.IsInf(scaleI, 0) || math.IsInf(scaleU, 0) {
		return fmt.Errorf("fexipro: snapshot quant scales (%v, %v) invalid", scaleI, scaleU)
	}
	if err := mips.ValidatePermutation(ids, n); err != nil {
		return fmt.Errorf("fexipro: snapshot id map: %w", err)
	}
	if len(norms) != n {
		return fmt.Errorf("fexipro: snapshot has %d norms for %d items", len(norms), n)
	}
	for s := 1; s < n; s++ {
		if norms[s] > norms[s-1] {
			return fmt.Errorf("fexipro: snapshot norms not sorted descending at position %d", s)
		}
	}
	if len(eigValues) != f || eigVectors.Rows() != f || eigVectors.Cols() != f {
		return fmt.Errorf("fexipro: snapshot eigenbasis is %dx%d with %d values, want %dx%d",
			eigVectors.Rows(), eigVectors.Cols(), len(eigValues), f, f)
	}
	if tItems.Rows() != n || tItems.Cols() != f {
		return fmt.Errorf("fexipro: snapshot rotated items are %dx%d, want %dx%d", tItems.Rows(), tItems.Cols(), n, f)
	}
	if tUsers.Rows() != nUsers || tUsers.Cols() != f {
		return fmt.Errorf("fexipro: snapshot rotated users are %dx%d, want %dx%d", tUsers.Rows(), tUsers.Cols(), nUsers, f)
	}

	x.cfg.Variant = variant
	x.cfg.EnergyFraction = energy
	x.cfg.QuantLevels = quantLevels
	x.f = f
	x.h = h
	x.users, x.items = users, items
	x.eig = &svd.Eigen{Values: eigValues, Vectors: eigVectors}
	x.gen = gen
	x.ids = ids
	x.norms = norms
	x.tItems = tItems
	x.tUsers = tUsers
	x.scaleI = scaleI
	x.scaleU = scaleU

	// Deterministic projections of the stored artifacts.
	x.itemTail = make([]float64, n)
	for s := 0; s < n; s++ {
		x.itemTail[s] = mat.Norm(tItems.Row(s)[h:])
	}
	x.qItems, x.itemErr = quantize(tItems, scaleI)
	x.qUsers, x.userErr = quantize(tUsers, scaleU)
	x.qUNorm = make([]float64, nUsers)
	for u := 0; u < nUsers; u++ {
		q := x.qUsers[u*f : (u+1)*f]
		var ss float64
		for _, v := range q {
			fv := float64(v) / scaleU
			ss += fv * fv
		}
		x.qUNorm[u] = math.Sqrt(ss)
	}
	x.userNorm = users.RowNorms()

	if variant == SIR {
		x.shift = make([]float64, f)
		for j := h; j < f; j++ {
			mn := math.Inf(1)
			for s := 0; s < n; s++ {
				if v := tItems.At(s, j); v < mn {
					mn = v
				}
			}
			if mn < 0 {
				x.shift[j] = -mn
			}
		}
		x.tailSums = make([]float64, n)
		for s := 0; s < n; s++ {
			row := tItems.Row(s)
			var sum float64
			for j := h; j < f; j++ {
				sum += row[j] + x.shift[j]
			}
			x.tailSums[s] = sum
		}
		x.uTailC = make([]float64, nUsers)
		x.uMaxPos = make([]float64, nUsers)
		for u := 0; u < nUsers; u++ {
			row := tUsers.Row(u)
			var c, mp float64
			for j := h; j < f; j++ {
				c += row[j] * x.shift[j]
				if row[j] > mp {
					mp = row[j]
				}
			}
			x.uTailC[u] = c
			x.uMaxPos[u] = mp
		}
	} else {
		x.shift, x.tailSums, x.uTailC, x.uMaxPos = nil, nil, nil, nil
	}
	x.buildTime = 0
	return nil
}
