// Package kmeans implements the user-clustering substrate MAXIMUS builds on
// (§III-A): Lloyd's k-means with k-means++ seeding, plus the two variants the
// paper discusses — spherical k-means (the angular ideal it compares against)
// and assignment-only placement for dynamically arriving users (§III-E).
//
// The paper's finding, reproduced by the ablation-clustering experiment, is
// that plain k-means approximates the angular objective within a few percent
// while running 2–3× faster, so MAXIMUS defaults to Lloyd's algorithm with a
// small, fixed iteration count (i = 3).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"optimus/internal/mat"
	"optimus/internal/parallel"
)

// Config controls a clustering run.
type Config struct {
	// K is the number of clusters. Required, >= 1.
	K int
	// Iterations is the number of Lloyd iterations after seeding.
	// The paper finds i = 3 sufficient (§III-D).
	Iterations int
	// Spherical switches to spherical k-means: points are compared by cosine
	// dissimilarity and centroids are re-projected onto the unit sphere each
	// iteration. Used only by the clustering ablation.
	Spherical bool
	// Seed feeds the k-means++ initialization. Runs are deterministic for a
	// fixed (Seed, input) pair.
	Seed int64
	// Threads parallelizes the assignment step across points. <=1 is serial.
	Threads int
}

// Result holds a completed clustering.
type Result struct {
	// Centroids is a K×f matrix of cluster centers.
	Centroids *mat.Matrix
	// Assign maps each input row to its centroid index.
	Assign []int
	// Sizes counts members per cluster.
	Sizes []int
	// Inertia is the summed squared Euclidean distance (or, for spherical
	// runs, summed cosine dissimilarity) from points to their centroids
	// after the final iteration.
	Inertia float64
}

// Members returns, for each cluster, the input-row indices assigned to it,
// preserving input order within each cluster.
func (r *Result) Members() [][]int {
	members := make([][]int, r.Centroids.Rows())
	for i, c := range r.Assign {
		members[c] = append(members[c], i)
	}
	return members
}

// Run clusters the rows of points. If the input has fewer rows than K, the
// effective K is reduced to the number of rows (every point its own cluster).
func Run(points *mat.Matrix, cfg Config) (*Result, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	if cfg.Iterations < 0 {
		return nil, fmt.Errorf("kmeans: negative iterations %d", cfg.Iterations)
	}
	n := points.Rows()
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	k := cfg.K
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var work *mat.Matrix
	if cfg.Spherical {
		// Spherical k-means operates on directions only.
		work = points.Clone()
		for i := 0; i < n; i++ {
			mat.Normalize(work.Row(i))
		}
	} else {
		work = points
	}

	centroids := seedPlusPlus(work, k, rng)
	assign := make([]int, n)
	sizes := make([]int, k)
	var inertia float64

	iters := cfg.Iterations
	if iters == 0 {
		iters = 1 // at least one assignment pass so Result is coherent
	}
	for it := 0; it < iters; it++ {
		inertia = assignAll(work, centroids, assign, cfg.Threads, cfg.Spherical)
		updateCentroids(work, centroids, assign, sizes, rng, cfg.Spherical)
	}
	// Final assignment against the final centroids.
	inertia = assignAll(work, centroids, assign, cfg.Threads, cfg.Spherical)
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return &Result{Centroids: centroids, Assign: assign, Sizes: sizes, Inertia: inertia}, nil
}

// AssignOnly places each row of points with the nearest existing centroid
// (squared Euclidean distance), without moving any centroid. This is the
// §III-E path for new users arriving after the index is built.
func AssignOnly(points, centroids *mat.Matrix, threads int) []int {
	if points.Cols() != centroids.Cols() {
		panic(fmt.Sprintf("kmeans: dimension mismatch %d vs %d", points.Cols(), centroids.Cols()))
	}
	assign := make([]int, points.Rows())
	assignAll(points, centroids, assign, threads, false)
	return assign
}

// seedPlusPlus implements k-means++ seeding: the first centroid is uniform,
// each subsequent one is drawn with probability proportional to the squared
// distance from the nearest centroid chosen so far.
func seedPlusPlus(points *mat.Matrix, k int, rng *rand.Rand) *mat.Matrix {
	n := points.Rows()
	centroids := mat.New(k, points.Cols())
	first := rng.Intn(n)
	copy(centroids.Row(0), points.Row(first))

	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(points.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dist {
			total += d
		}
		var chosen int
		if total <= 0 {
			// All points coincide with existing centroids; fall back to
			// uniform so we still produce k (possibly duplicate) centers.
			chosen = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var cum float64
			chosen = n - 1
			for i, d := range dist {
				cum += d
				if cum >= target {
					chosen = i
					break
				}
			}
		}
		copy(centroids.Row(c), points.Row(chosen))
		for i := range dist {
			if d := sqDist(points.Row(i), centroids.Row(c)); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centroids
}

// assignGrain is the chunk size of the parallel assignment step. The chunk
// decomposition — and therefore the order the per-chunk partial objectives
// are reduced in — depends only on the point count, so the returned inertia
// is bit-identical at every thread count.
const assignGrain = 256

// assignAll assigns every point to its nearest centroid and returns the
// objective value. For spherical mode, "nearest" means highest cosine
// similarity and the objective is summed (1 - cos).
func assignAll(points, centroids *mat.Matrix, assign []int, threads int, spherical bool) float64 {
	n := points.Rows()
	part := make([]float64, parallel.Chunks(n, assignGrain))
	parallel.ForThreads(threads, n, assignGrain, func(lo, hi int) {
		part[parallel.Chunk(lo, assignGrain)] = assignRange(points, centroids, assign, lo, hi, spherical)
	})
	var total float64
	for _, p := range part {
		total += p
	}
	return total
}

func assignRange(points, centroids *mat.Matrix, assign []int, lo, hi int, spherical bool) float64 {
	var obj float64
	k := centroids.Rows()
	if spherical {
		norms := make([]float64, k)
		for c := 0; c < k; c++ {
			norms[c] = mat.Norm(centroids.Row(c))
		}
		for i := lo; i < hi; i++ {
			p := points.Row(i)
			pn := mat.Norm(p)
			best, bestCos := 0, math.Inf(-1)
			for c := 0; c < k; c++ {
				denom := pn * norms[c]
				var cos float64
				if denom == 0 {
					cos = 1 // degenerate: zero vectors co-located by convention
				} else {
					cos = mat.Dot(p, centroids.Row(c)) / denom
				}
				if cos > bestCos {
					best, bestCos = c, cos
				}
			}
			assign[i] = best
			obj += 1 - bestCos
		}
		return obj
	}
	for i := lo; i < hi; i++ {
		p := points.Row(i)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if d := sqDist(p, centroids.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		obj += bestD
	}
	return obj
}

// updateCentroids recomputes each centroid as the mean of its members.
// Empty clusters are re-seeded with a random point, the standard Lloyd
// repair. Spherical mode re-projects centroids onto the unit sphere.
func updateCentroids(points, centroids *mat.Matrix, assign []int, sizes []int, rng *rand.Rand, spherical bool) {
	k := centroids.Rows()
	for i := range centroids.Data() {
		centroids.Data()[i] = 0
	}
	for i := range sizes {
		sizes[i] = 0
	}
	for i, c := range assign {
		p := points.Row(i)
		cr := centroids.Row(c)
		for j, v := range p {
			cr[j] += v
		}
		sizes[c]++
	}
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			copy(centroids.Row(c), points.Row(rng.Intn(points.Rows())))
			continue
		}
		mat.Scale(centroids.Row(c), 1/float64(sizes[c]))
		if spherical {
			mat.Normalize(centroids.Row(c))
		}
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// MaxAngle returns, for each cluster, the largest angle θuc (radians) between
// any member and its centroid — the θb bound MAXIMUS's index construction
// needs (Algorithm 1). Clusters with no members get θb = 0.
func MaxAngle(points *mat.Matrix, r *Result) []float64 {
	theta := make([]float64, r.Centroids.Rows())
	for i, c := range r.Assign {
		a := mat.Angle(points.Row(i), r.Centroids.Row(c))
		if a > theta[c] {
			theta[c] = a
		}
	}
	return theta
}

// MeanAngle returns the average member-to-centroid angle across all points,
// the statistic the paper uses to compare k-means against spherical
// clustering (§III-A reports k-means within ~7%).
func MeanAngle(points *mat.Matrix, r *Result) float64 {
	if len(r.Assign) == 0 {
		return 0
	}
	var sum float64
	for i, c := range r.Assign {
		sum += mat.Angle(points.Row(i), r.Centroids.Row(c))
	}
	return sum / float64(len(r.Assign))
}
