package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optimus/internal/mat"
)

// clusteredPoints builds n points around k well-separated centers.
func clusteredPoints(rng *rand.Rand, n, k, dim int, spread float64) (*mat.Matrix, []int) {
	centers := mat.New(k, dim)
	for i := range centers.Data() {
		centers.Data()[i] = rng.NormFloat64() * 10
	}
	pts := mat.New(n, dim)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		row := pts.Row(i)
		for j := 0; j < dim; j++ {
			row[j] = centers.At(c, j) + rng.NormFloat64()*spread
		}
	}
	return pts, truth
}

func TestRunValidation(t *testing.T) {
	pts := mat.New(4, 2)
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Run(pts, Config{K: 2, Iterations: -1}); err == nil {
		t.Fatal("expected error for negative iterations")
	}
	if _, err := Run(mat.New(0, 2), Config{K: 2}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestRunRecoversSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts, truth := clusteredPoints(rng, 300, 3, 4, 0.05)
	r, err := Run(pts, Config{K: 3, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every pair in the same true cluster must share an assigned cluster.
	for i := 1; i < len(truth); i++ {
		for j := 0; j < i; j++ {
			same := truth[i] == truth[j]
			got := r.Assign[i] == r.Assign[j]
			if same != got {
				t.Fatalf("points %d,%d: truth same=%v assigned same=%v", i, j, same, got)
			}
		}
	}
}

func TestAssignmentIsNearest(t *testing.T) {
	// Invariant: after Run, every point is assigned to its true nearest
	// centroid (that is what the final assignment pass guarantees).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		pts := mat.New(n, 3)
		for i := range pts.Data() {
			pts.Data()[i] = rng.NormFloat64()
		}
		r, err := Run(pts, Config{K: 4, Iterations: 2, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			got := sqDist(pts.Row(i), r.Centroids.Row(r.Assign[i]))
			for c := 0; c < r.Centroids.Rows(); c++ {
				if sqDist(pts.Row(i), r.Centroids.Row(c)) < got-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSizesMatchAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := clusteredPoints(rng, 120, 4, 3, 1.0)
	r, err := Run(pts, Config{K: 4, Iterations: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, c := range r.Assign {
		counts[c]++
	}
	total := 0
	for c, want := range counts {
		if r.Sizes[c] != want {
			t.Fatalf("Sizes[%d] = %d, want %d", c, r.Sizes[c], want)
		}
		total += want
	}
	if total != 120 {
		t.Fatalf("assignments cover %d points, want 120", total)
	}
}

func TestMembersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := clusteredPoints(rng, 60, 3, 2, 1.0)
	r, err := Run(pts, Config{K: 3, Iterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 60)
	for c, members := range r.Members() {
		for _, i := range members {
			if seen[i] {
				t.Fatalf("point %d appears in multiple clusters", i)
			}
			seen[i] = true
			if r.Assign[i] != c {
				t.Fatalf("member list disagrees with Assign for point %d", i)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d missing from member lists", i)
		}
	}
}

func TestDeterminismForFixedSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := clusteredPoints(rng, 100, 3, 4, 0.5)
	a, err := Run(pts, Config{K: 3, Iterations: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, Config{K: 3, Iterations: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give identical assignments")
		}
	}
	if !a.Centroids.Equal(b.Centroids, 0) {
		t.Fatal("same seed must give identical centroids")
	}
}

func TestKLargerThanN(t *testing.T) {
	pts := mat.New(3, 2)
	for i := range pts.Data() {
		pts.Data()[i] = float64(i)
	}
	r, err := Run(pts, Config{K: 10, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Centroids.Rows() != 3 {
		t.Fatalf("effective K = %d, want 3", r.Centroids.Rows())
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts, _ := clusteredPoints(rng, 600, 5, 8, 0.8)
	serial, err := Run(pts, Config{K: 5, Iterations: 4, Seed: 5, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(pts, Config{K: 5, Iterations: 4, Seed: 5, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Assign {
		if serial.Assign[i] != parallel.Assign[i] {
			t.Fatal("parallel assignment differs from serial")
		}
	}
}

func TestSphericalCentroidsUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := clusteredPoints(rng, 200, 4, 6, 0.5)
	r, err := Run(pts, Config{K: 4, Iterations: 5, Seed: 6, Spherical: true})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < r.Centroids.Rows(); c++ {
		n := mat.Norm(r.Centroids.Row(c))
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("spherical centroid %d has norm %v, want 1", c, n)
		}
	}
}

func TestSphericalBeatsLloydOnAngles(t *testing.T) {
	// The paper's §III-A premise: spherical clustering optimizes the angular
	// objective directly, so its mean θuc must not be meaningfully worse
	// than Lloyd's. Construct users with very different norms but shared
	// directions, where Lloyd's Euclidean objective is misled.
	rng := rand.New(rand.NewSource(12))
	n, dim := 400, 5
	pts := mat.New(n, dim)
	dirs := mat.New(4, dim)
	for i := range dirs.Data() {
		dirs.Data()[i] = rng.NormFloat64()
	}
	for c := 0; c < 4; c++ {
		mat.Normalize(dirs.Row(c))
	}
	for i := 0; i < n; i++ {
		c := i % 4
		scale := math.Pow(10, rng.Float64()*2) // norms spread over 2 decades
		row := pts.Row(i)
		for j := 0; j < dim; j++ {
			row[j] = (dirs.At(c, j) + rng.NormFloat64()*0.05) * scale
		}
	}
	lloyd, err := Run(pts, Config{K: 4, Iterations: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sph, err := Run(pts, Config{K: 4, Iterations: 8, Seed: 3, Spherical: true})
	if err != nil {
		t.Fatal(err)
	}
	la, sa := MeanAngle(pts, lloyd), MeanAngle(pts, sph)
	if sa > la*1.5 {
		t.Fatalf("spherical mean angle %v should not be much worse than lloyd %v", sa, la)
	}
}

func TestMaxAngleIsUpperBound(t *testing.T) {
	// θb must bound every member's angle — the property Equation 3 needs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts, _ := clusteredPoints(rng, 50+rng.Intn(100), 3, 4, 1.0)
		r, err := Run(pts, Config{K: 3, Iterations: 3, Seed: seed})
		if err != nil {
			return false
		}
		theta := MaxAngle(pts, r)
		for i, c := range r.Assign {
			if mat.Angle(pts.Row(i), r.Centroids.Row(c)) > theta[c]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts, _ := clusteredPoints(rng, 200, 3, 4, 0.05)
	r, err := Run(pts, Config{K: 3, Iterations: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// New points drawn near existing data must land on nearest centroids.
	newPts, _ := clusteredPoints(rand.New(rand.NewSource(14)), 50, 3, 4, 0.05)
	got := AssignOnly(newPts, r.Centroids, 2)
	for i := range got {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < r.Centroids.Rows(); c++ {
			if d := sqDist(newPts.Row(i), r.Centroids.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		if got[i] != best {
			t.Fatalf("point %d assigned to %d, nearest is %d", i, got[i], best)
		}
	}
}

func TestAssignOnlyDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	AssignOnly(mat.New(2, 3), mat.New(2, 4), 1)
}

func TestInertiaDecreasesWithIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	pts, _ := clusteredPoints(rng, 300, 5, 6, 2.0)
	r1, err := Run(pts, Config{K: 5, Iterations: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Run(pts, Config{K: 5, Iterations: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r10.Inertia > r1.Inertia*1.0001 {
		t.Fatalf("inertia after 10 iters (%v) exceeds after 1 iter (%v)", r10.Inertia, r1.Inertia)
	}
}

func TestZeroIterationsStillAssigns(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	pts, _ := clusteredPoints(rng, 40, 2, 3, 0.5)
	r, err := Run(pts, Config{K: 2, Iterations: 0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Assign) != 40 {
		t.Fatal("zero-iteration run must still assign all points")
	}
}

func TestIdenticalPointsDegenerate(t *testing.T) {
	pts := mat.New(10, 3)
	for i := 0; i < 10; i++ {
		copy(pts.Row(i), []float64{1, 2, 3})
	}
	r, err := Run(pts, Config{K: 3, Iterations: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Inertia > 1e-18 {
		t.Fatalf("identical points should give ~0 inertia, got %v", r.Inertia)
	}
}
