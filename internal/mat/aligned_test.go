package mat

import (
	"bytes"
	"testing"
)

func alignedSample(rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = float64(i)*0.5 - 3
	}
	return m
}

func TestAlignedRoundTripAtOffsets(t *testing.T) {
	m := alignedSample(3, 5)
	for base := int64(0); base < 17; base++ {
		var buf bytes.Buffer
		n, err := WriteBinaryAligned(&buf, m, base)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("base %d: reported %d bytes, wrote %d", base, n, buf.Len())
		}
		if want := AlignedSize(m, base); n != want {
			t.Fatalf("base %d: AlignedSize says %d, wrote %d", base, want, n)
		}
		// The payload's absolute offset must be 8-byte aligned.
		raw := buf.Bytes()
		pad := int(raw[20])
		if (base+int64(alignedHeaderSize)+int64(pad))%8 != 0 {
			t.Fatalf("base %d: pad %d leaves payload unaligned", base, pad)
		}
		got, consumed, err := ReadBinaryAligned(raw)
		if err != nil {
			t.Fatal(err)
		}
		if consumed != len(raw) {
			t.Fatalf("base %d: consumed %d of %d", base, consumed, len(raw))
		}
		if got.Rows() != m.Rows() || got.Cols() != m.Cols() {
			t.Fatalf("base %d: %dx%d", base, got.Rows(), got.Cols())
		}
		for i := range m.data {
			if got.data[i] != m.data[i] {
				t.Fatalf("base %d: elem %d = %v", base, i, got.data[i])
			}
		}
	}
}

func TestAlignedReadFreshBacking(t *testing.T) {
	m := alignedSample(2, 3)
	var buf bytes.Buffer
	if _, err := WriteBinaryAligned(&buf, m, 5); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	got, _, err := ReadBinaryAligned(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		raw[i] = 0xff
	}
	for i := range m.data {
		if got.data[i] != m.data[i] {
			t.Fatalf("decoded matrix aliases the input: elem %d = %v", i, got.data[i])
		}
	}
}

func TestAlignedReadGuards(t *testing.T) {
	m := alignedSample(2, 2)
	var buf bytes.Buffer
	if _, err := WriteBinaryAligned(&buf, m, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	corrupt := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), raw...))
	}
	cases := map[string][]byte{
		"short header": raw[:alignedHeaderSize-1],
		"bad magic":    corrupt(func(b []byte) []byte { b[0] = 'X'; return b }),
		"pad range":    corrupt(func(b []byte) []byte { b[20] = 9; return b }),
		"giant rows":   corrupt(func(b []byte) []byte { b[11] = 0xff; return b }),
		// rows*cols chosen to overflow a naive rows*cols*8 size check.
		"overflow dims": corrupt(func(b []byte) []byte {
			for i := 4; i < 20; i++ {
				b[i] = 0xcd
			}
			return b
		}),
		"truncated payload": raw[:len(raw)-3],
	}
	for name, b := range cases {
		if _, _, err := ReadBinaryAligned(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
