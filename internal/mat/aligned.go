package mat

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Aligned matrix format ("OMXA"): the snapshot-oriented extension of the
// OMX1 convention (io.go). The header is
//
//	magic  [4]byte  "OMXA"
//	rows   uint64
//	cols   uint64
//	pad    uint8
//
// followed by `pad` zero bytes and then rows*cols little-endian float64
// values in row-major order. pad is chosen by the writer so that, given the
// absolute stream offset the record starts at, the float64 payload begins on
// an 8-byte boundary of the enclosing file. A reader that maps the snapshot
// file can therefore point a []float64 view directly at the payload — the
// flat, mmap-friendly layout the persistence layer stores every matrix in.
// The stream readers below still copy into fresh backing (the Load aliasing
// rule: decoded state never aliases reader scratch); alignment is for
// future zero-copy mappers and costs at most 7 bytes per matrix.
const alignedMagic = "OMXA"

// alignedHeaderSize is the fixed prefix before the pad bytes.
const alignedHeaderSize = 4 + 8 + 8 + 1

// AlignedSize returns the encoded size of m written at absolute stream
// offset base.
func AlignedSize(m *Matrix, base int64) int64 {
	return int64(alignedHeaderSize) + int64(alignedPad(base)) + 8*int64(len(m.data))
}

// alignedPad returns the pad length placing the payload of a record starting
// at absolute offset base on an 8-byte boundary.
func alignedPad(base int64) int {
	return int((8 - (base+int64(alignedHeaderSize))%8) % 8)
}

// WriteBinaryAligned writes m to w in the OMXA format, assuming the record
// starts at absolute stream offset base. It returns the number of bytes
// written.
func WriteBinaryAligned(w io.Writer, m *Matrix, base int64) (int64, error) {
	pad := alignedPad(base)
	hdr := make([]byte, alignedHeaderSize+pad)
	copy(hdr, alignedMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(m.rows))
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(m.cols))
	hdr[20] = byte(pad)
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	written := int64(len(hdr))
	buf := make([]byte, 8*4096)
	for lo := 0; lo < len(m.data); lo += 4096 {
		hi := lo + 4096
		if hi > len(m.data) {
			hi = len(m.data)
		}
		for i, v := range m.data[lo:hi] {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		n, err := w.Write(buf[:8*(hi-lo)])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadBinaryAligned decodes one OMXA record from the front of data (the
// in-memory section payload the persistence layer hands it) and returns the
// matrix plus the number of bytes consumed. The matrix owns fresh backing —
// it never aliases data — and every header field is validated against the
// bytes actually present, so truncated or corrupted records return an error
// rather than panicking or over-allocating.
func ReadBinaryAligned(data []byte) (*Matrix, int, error) {
	if len(data) < alignedHeaderSize {
		return nil, 0, fmt.Errorf("mat: aligned record truncated at %d header bytes", len(data))
	}
	if string(data[:4]) != alignedMagic {
		return nil, 0, fmt.Errorf("mat: bad aligned magic %q, want %q", data[:4], alignedMagic)
	}
	rows := binary.LittleEndian.Uint64(data[4:12])
	cols := binary.LittleEndian.Uint64(data[12:20])
	pad := int(data[20])
	if pad > 7 {
		return nil, 0, fmt.Errorf("mat: aligned pad %d out of range", pad)
	}
	const maxElems = 1 << 34 // mirrors ReadBinary's corrupt-header guard
	if rows > maxElems || cols > maxElems || (cols != 0 && rows > maxElems/cols) {
		return nil, 0, fmt.Errorf("mat: unreasonable dimensions %dx%d", rows, cols)
	}
	elems := int(rows * cols)
	need := alignedHeaderSize + pad + 8*elems
	// The payload must physically fit in the bytes present: a corrupt count
	// cannot force an allocation larger than the input that claimed it.
	if len(data) < need {
		return nil, 0, fmt.Errorf("mat: aligned record wants %d bytes, have %d", need, len(data))
	}
	m := New(int(rows), int(cols))
	payload := data[alignedHeaderSize+pad:]
	for i := 0; i < elems; i++ {
		m.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return m, need, nil
}
