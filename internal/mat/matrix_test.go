package mat

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	if len(m.Data()) != 12 {
		t.Fatalf("backing slice length %d, want 12", len(m.Data()))
	}
	for _, v := range m.Data() {
		if v != 0 {
			t.Fatalf("new matrix not zeroed: %v", m.Data())
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m, err := FromSlice(2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	// Aliasing: mutating the source must be visible.
	data[5] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("FromSlice must alias its input")
	}
	if _, err := FromSlice(2, 3, data[:5]); err == nil {
		t.Fatal("expected error for wrong backing length")
	}
	if _, err := FromSlice(-1, 3, nil); err == nil {
		t.Fatal("expected error for negative dimension")
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected matrix %+v", m)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged-rows error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty FromRows: %v %v", empty, err)
	}
}

func TestRowAliases(t *testing.T) {
	m := New(2, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias backing store")
	}
}

func TestAtSetBounds(t *testing.T) {
	m := New(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, 2) },
		func() { m.Set(0, -1, 1) },
		func() { m.Row(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected out-of-range panic")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestRowSlice(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	s := m.RowSlice(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 2 || s.At(1, 1) != 3 {
		t.Fatalf("unexpected slice %+v", s.Data())
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("RowSlice must alias parent storage")
	}
	if got := m.RowSlice(2, 2).Rows(); got != 0 {
		t.Fatalf("empty slice rows = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad range")
		}
	}()
	m.RowSlice(3, 1)
}

func TestSelectRows(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 0}, {2, 0}, {3, 0}})
	s := m.SelectRows([]int{2, 0, 2})
	want := []float64{3, 0, 1, 0, 3, 0}
	if !reflect.DeepEqual(s.Data(), want) {
		t.Fatalf("SelectRows = %v, want %v", s.Data(), want)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := New(r, c)
		for i := range m.Data() {
			m.Data()[i] = rng.NormFloat64()
		}
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowNorms(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}, {0, 0}, {1, 0}})
	got := m.RowNorms()
	want := []float64{5, 0, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-15 {
			t.Fatalf("RowNorms = %v, want %v", got, want)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := FromRows([][]float64{{-7, 2}, {3, 4}})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", m.MaxAbs())
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestEqual(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{1, 2.0000001}})
	if !a.Equal(b, 1e-6) {
		t.Fatal("should be equal within tolerance")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("should differ at tight tolerance")
	}
	c := New(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("different shapes cannot be equal")
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected length-mismatch panic")
		}
	}()
	Dot(a, b[:2])
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if math.Abs(Norm(v)-1) > 1e-15 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 || z[0] != 0 {
		t.Fatal("zero vector must be untouched")
	}
}

func TestCosAngleClamping(t *testing.T) {
	// Parallel vectors can produce cos slightly above 1 via rounding; the
	// clamp must keep Acos in-domain.
	a := []float64{1e-8, 2e-8, 3e-8}
	if c := CosAngle(a, a); c != 1 {
		t.Fatalf("CosAngle(a,a) = %v, want exactly 1 after clamp", c)
	}
	if ang := Angle(a, a); ang != 0 {
		t.Fatalf("Angle(a,a) = %v, want 0", ang)
	}
	b := []float64{-1, 0}
	c := []float64{1, 0}
	if ang := Angle(b, c); math.Abs(ang-math.Pi) > 1e-12 {
		t.Fatalf("Angle(opposite) = %v, want π", ang)
	}
	if CosAngle([]float64{0, 0}, c) != 1 {
		t.Fatal("zero vector convention: CosAngle = 1")
	}
}

func TestAngleTriangleInequality(t *testing.T) {
	// Angular distance is a metric on the sphere: θ(a,b) ≤ θ(a,c) + θ(c,b).
	// This is the inequality Equation 2 of the paper rests on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(6)
		v := func() []float64 {
			x := make([]float64, dim)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			if Norm(x) == 0 {
				x[0] = 1
			}
			return x
		}
		a, b, c := v(), v(), v()
		return Angle(a, b) <= Angle(a, c)+Angle(c, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(17, 9)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("binary round trip lost data")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewBufferString("NOPE")); err == nil {
		t.Fatal("expected magic error")
	}
	var buf bytes.Buffer
	buf.WriteString("OMX1")
	buf.Write(make([]byte, 16)) // 0x0 matrix header, no data: valid
	if m, err := ReadBinary(&buf); err != nil || m.Rows() != 0 {
		t.Fatalf("empty matrix read: %v %v", m, err)
	}
	// Truncated payload.
	var buf2 bytes.Buffer
	m := New(2, 2)
	if err := WriteBinary(&buf2, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf2.Bytes()[:buf2.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/m.omx"
	m, _ := FromRows([][]float64{{1.5, -2.25}, {0, 3.125}})
	if err := WriteBinaryFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("file round trip lost data")
	}
	if _, err := ReadBinaryFile(path + ".missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(5, 3)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m, 0) {
		t.Fatal("CSV round trip must be lossless at full precision")
	}
}

func TestReadCSVVariants(t *testing.T) {
	m, err := ReadCSV(bytes.NewBufferString("1 2 3\n\n4 5 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.At(1, 2) != 6 {
		t.Fatalf("whitespace CSV parse: %+v", m.Data())
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,2\n3\n")); err == nil {
		t.Fatal("expected ragged error")
	}
	if _, err := ReadCSV(bytes.NewBufferString("1,x\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAppendRemoveInsertRows(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b, _ := FromRows([][]float64{{7, 8}})

	ap := AppendRows(a, b)
	if ap.Rows() != 4 || ap.At(3, 1) != 8 || ap.At(0, 0) != 1 {
		t.Fatalf("AppendRows: %+v", ap.Data())
	}
	// Fresh backing: mutating the result must not touch the inputs.
	ap.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("AppendRows aliased its input")
	}

	rm := RemoveRows(ap, []int{0, 2})
	want, _ := FromRows([][]float64{{3, 4}, {7, 8}})
	if !rm.Equal(want, 0) {
		t.Fatalf("RemoveRows: %+v", rm.Data())
	}

	ins := a.InsertRow(1, []float64{9, 10})
	want2, _ := FromRows([][]float64{{1, 2}, {9, 10}, {3, 4}, {5, 6}})
	if !ins.Equal(want2, 0) {
		t.Fatalf("InsertRow middle: %+v", ins.Data())
	}
	if !a.InsertRow(3, []float64{9, 10}).RowSlice(3, 4).Equal(want2.RowSlice(1, 2), 0) {
		t.Fatal("InsertRow at end")
	}
	if !a.InsertRow(0, []float64{9, 10}).RowSlice(0, 1).Equal(want2.RowSlice(1, 2), 0) {
		t.Fatal("InsertRow at start")
	}

	for _, fn := range []func(){
		func() { AppendRows(a, New(1, 3)) },
		func() { a.InsertRow(-1, []float64{1, 2}) },
		func() { a.InsertRow(4, []float64{1, 2}) },
		func() { a.InsertRow(0, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on shape violation")
				}
			}()
			fn()
		}()
	}
}
