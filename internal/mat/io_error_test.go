package mat

import (
	"bytes"
	"errors"
	"testing"
)

// failWriter fails after n bytes, exercising every write-error branch.
type failWriter struct {
	n       int
	written int
}

var errWriterFull = errors.New("writer full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		can := w.n - w.written
		if can < 0 {
			can = 0
		}
		w.written += can
		return can, errWriterFull
	}
	w.written += len(p)
	return len(p), nil
}

func TestWriteBinaryErrorPropagation(t *testing.T) {
	m := New(64, 64) // large enough to overflow any small limit
	for _, limit := range []int{0, 2, 10, 1000} {
		if err := WriteBinary(&failWriter{n: limit}, m); err == nil {
			t.Fatalf("limit %d: expected write error", limit)
		}
	}
}

func TestWriteCSVErrorPropagation(t *testing.T) {
	m := New(64, 8)
	for _, limit := range []int{0, 3, 100} {
		if err := WriteCSV(&failWriter{n: limit}, m); err == nil {
			t.Fatalf("limit %d: expected write error", limit)
		}
	}
}

func TestReadBinaryHeaderTruncations(t *testing.T) {
	// Truncation inside the magic, inside the header, and inside the data
	// must each produce distinct, wrapped errors rather than panics.
	var full bytes.Buffer
	if err := WriteBinary(&full, New(3, 3)); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for _, cut := range []int{0, 2, 4, 12, 20, len(raw) - 1} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("cut %d: expected error", cut)
		}
	}
}

func TestReadBinaryRejectsHugeDimensions(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("OMX1")
	// rows = 2^40, cols = 2^40: must be rejected before allocation.
	hdr := make([]byte, 16)
	hdr[5] = 1  // little-endian 2^40 in rows
	hdr[13] = 1 // little-endian 2^40 in cols
	buf.Write(hdr)
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected dimension-sanity error")
	}
}

func TestWriteBinaryFileErrors(t *testing.T) {
	if err := WriteBinaryFile("/nonexistent-dir/x.omx", New(1, 1)); err == nil {
		t.Fatal("expected create error")
	}
}
