package mat

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Binary matrix format ("OMX1"): a little-endian header of
//
//	magic  [4]byte  "OMX1"
//	rows   uint64
//	cols   uint64
//
// followed by rows*cols float64 values in row-major order. This mirrors the
// flat binary dumps the paper's reference implementations exchange between
// the model trainers (NOMAD, DSGD) and the MIPS solvers.
const binaryMagic = "OMX1"

// WriteBinary writes m to w in the OMX1 format.
func WriteBinary(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(m.rows))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.cols))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range m.data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads an OMX1 matrix from r.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("mat: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("mat: bad magic %q, want %q", magic, binaryMagic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("mat: reading header: %w", err)
	}
	rows := binary.LittleEndian.Uint64(hdr[0:8])
	cols := binary.LittleEndian.Uint64(hdr[8:16])
	const maxElems = 1 << 34 // 128 GiB of float64s; guards corrupt headers
	if rows > maxElems || cols > maxElems || (cols != 0 && rows > maxElems/cols) {
		return nil, fmt.Errorf("mat: unreasonable dimensions %dx%d", rows, cols)
	}
	m := New(int(rows), int(cols))
	buf := make([]byte, 8*4096)
	filled := 0
	for filled < len(m.data) {
		want := len(m.data) - filled
		if want > 4096 {
			want = 4096
		}
		if _, err := io.ReadFull(br, buf[:8*want]); err != nil {
			return nil, fmt.Errorf("mat: reading data at element %d: %w", filled, err)
		}
		for i := 0; i < want; i++ {
			m.data[filled+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		filled += want
	}
	return m, nil
}

// WriteBinaryFile writes m to path in the OMX1 format.
func WriteBinaryFile(path string, m *Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads an OMX1 matrix from path.
func ReadBinaryFile(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteCSV writes m as comma-separated rows with %.17g precision (lossless
// float64 round-trip). CSV is the interchange format the LEMP and FEXIPRO
// reference repositories use for their model files.
func WriteCSV(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', 17, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a comma- (or whitespace-) separated numeric matrix. All rows
// must have the same number of fields; blank lines are skipped.
func ReadCSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var rows [][]float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := splitCSVLine(text)
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("mat: line %d field %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		if len(rows) > 0 && len(row) != len(rows[0]) {
			return nil, fmt.Errorf("mat: line %d has %d fields, want %d", line, len(row), len(rows[0]))
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromRows(rows)
}

func splitCSVLine(s string) []string {
	if strings.ContainsRune(s, ',') {
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	return strings.Fields(s)
}
