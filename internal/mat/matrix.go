// Package mat provides the dense-matrix substrate used by every MIPS solver
// in this repository: a row-major float64 matrix with row views, norms,
// sub-matrix selection, and (de)serialization. It deliberately stays tiny —
// the performance-critical kernels live in internal/blas.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values. Rows are contiguous,
// so Row(i) returns a slice aliasing the backing store; this is what lets the
// blocked GEMM kernel and the index walkers share data with zero copies.
//
// The zero value is an empty 0x0 matrix ready for use with Reset.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New allocates a rows×cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice wraps an existing backing slice as a rows×cols matrix without
// copying. len(data) must be exactly rows*cols.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("mat: negative dimension %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("mat: backing slice has %d elements, want %d", len(data), rows*cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// FromRows copies a slice-of-rows into a new matrix. All rows must share the
// same length; an empty input yields a 0x0 matrix.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("mat: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// Data returns the backing slice (row-major). Mutating it mutates the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Row returns row i as a slice aliasing the backing store.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row index %d out of range [0,%d)", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column index %d out of range [0,%d)", j, m.cols))
	}
	return m.Row(i)[j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: column index %d out of range [0,%d)", j, m.cols))
	}
	m.Row(i)[j] = v
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// RowSlice returns a new matrix that aliases rows [from, to) of m.
// The returned matrix shares backing storage with m.
func (m *Matrix) RowSlice(from, to int) *Matrix {
	if from < 0 || to < from || to > m.rows {
		panic(fmt.Sprintf("mat: row slice [%d,%d) out of range [0,%d]", from, to, m.rows))
	}
	return &Matrix{rows: to - from, cols: m.cols, data: m.data[from*m.cols : to*m.cols]}
}

// SelectRows copies the listed rows (in order, duplicates allowed) into a new
// matrix. Used by the sampling optimizer and by cluster partitioning.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	out := New(len(idx), m.cols)
	for k, i := range idx {
		copy(out.Row(k), m.Row(i))
	}
	return out
}

// AppendRows returns a new matrix holding a's rows followed by b's rows.
// Neither input is modified or aliased — the result owns fresh backing
// storage — which is what the mutable-corpus lifecycle requires: a solver
// growing its item matrix must not disturb callers (or sibling shards)
// still aliasing the original rows. Panics if the column counts differ.
func AppendRows(a, b *Matrix) *Matrix {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: append %d columns to %d", b.cols, a.cols))
	}
	out := New(a.rows+b.rows, a.cols)
	copy(out.data, a.data)
	copy(out.data[len(a.data):], b.data)
	return out
}

// RemoveRows returns a new matrix with the listed rows deleted; the
// remaining rows keep their relative order (the compaction step of the
// mutable-corpus id contract: surviving row i becomes row i − |{removed
// ids < i}|). ids must be sorted ascending and duplicate-free, and every id
// must be in range — the caller validates (see mips.ValidateRemoveIDs).
// The input matrix is not modified or aliased.
func RemoveRows(m *Matrix, ids []int) *Matrix {
	out := New(m.rows-len(ids), m.cols)
	next := 0 // index into ids of the next row to drop
	w := 0
	for i := 0; i < m.rows; i++ {
		if next < len(ids) && ids[next] == i {
			next++
			continue
		}
		copy(out.Row(w), m.Row(i))
		w++
	}
	return out
}

// InsertRow returns a new matrix with row inserted at position pos (existing
// rows at pos and beyond shift down by one). The input is not modified or
// aliased. Panics if pos is out of [0, rows] or the row length mismatches.
func (m *Matrix) InsertRow(pos int, row []float64) *Matrix {
	if pos < 0 || pos > m.rows {
		panic(fmt.Sprintf("mat: insert position %d out of range [0,%d]", pos, m.rows))
	}
	if len(row) != m.cols {
		panic(fmt.Sprintf("mat: insert row has %d columns, want %d", len(row), m.cols))
	}
	out := New(m.rows+1, m.cols)
	copy(out.data, m.data[:pos*m.cols])
	copy(out.Row(pos), row)
	copy(out.data[(pos+1)*m.cols:], m.data[pos*m.cols:])
	return out
}

// Transpose returns a new cols×rows matrix with m's data transposed.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*m.rows+i] = v
		}
	}
	return t
}

// RowNorms returns the Euclidean norm of every row.
func (m *Matrix) RowNorms() []float64 {
	norms := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		norms[i] = Norm(m.Row(i))
	}
	return norms
}

// MaxAbs returns the largest absolute value in the matrix, or 0 if empty.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether two matrices have identical shape and elements within
// absolute tolerance tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b. Panics if lengths differ.
// This is the scalar reference implementation; internal/blas provides the
// unrolled kernel used on hot paths.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Scale multiplies every element of v by alpha, in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Normalize scales v to unit Euclidean norm in place and returns its original
// norm. Zero vectors are left untouched and return 0.
func Normalize(v []float64) float64 {
	n := Norm(v)
	if n == 0 {
		return 0
	}
	Scale(v, 1/n)
	return n
}

// CosAngle returns cos(θ) between a and b, clamped to [-1, 1] so that
// math.Acos never sees a value nudged outside its domain by rounding.
// Returns 1 (angle 0) if either vector is zero, a convention that keeps the
// MAXIMUS bound conservative for degenerate inputs.
func CosAngle(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	c := Dot(a, b) / (na * nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Angle returns the angle in radians between a and b, in [0, π].
func Angle(a, b []float64) float64 {
	return math.Acos(CosAngle(a, b))
}

// ErrShape is returned by operations whose operand shapes do not conform.
var ErrShape = errors.New("mat: shape mismatch")
