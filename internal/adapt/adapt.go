// Package adapt is the drift-driven re-structuring surface: the shared
// vocabulary through which index structures report how far the live corpus
// has drifted from the snapshot they were built for (DriftStats), the
// configurable rules that decide when drift warrants acting (Policy), and a
// background Tuner (tuner.go) that turns a firing rule into a staged
// re-structure committed at the owner's drain boundary.
//
// The package exists because the OPTIMUS thesis — the right index is a
// *measured* decision (§IV) — goes stale the moment the corpus churns: the
// by-norm cutoffs, the shard count S, the per-shard index-vs-scan plans,
// and the wave schedule were all chosen for the build-time distribution.
// Every structure in the repository already collects the evidence of that
// decay (per-shard churn counters, arrival routing, scan meters, the cone
// tree's churn-fraction rule); adapt gives the evidence one shape and one
// trigger surface, so the per-solver rule (conetree) and the composite rule
// (shard.Sharded) report and fire through the same API.
//
// adapt deliberately depends on nothing but the standard library, so any
// layer — solver, composite, serving — can implement Reporter or Driver
// without an import cycle.
package adapt

import (
	"errors"
	"fmt"
	"time"
)

// DriftStats is a point-in-time drift measurement: how far a structure's
// live corpus has moved from the distribution it was last (re)structured
// for. All counters are "since the last (re)build or committed retune" —
// a commit resets them, so a freshly structured index reports zero drift.
type DriftStats struct {
	// Generation is the owner's mips.ItemMutator stamp at measurement time.
	Generation uint64
	// Items is the current corpus size.
	Items int
	// Adds and Removes count item arrivals/departures absorbed since the
	// last (re)structure.
	Adds, Removes int64
	// Partitions holds the live partition sizes (shard item counts for the
	// composite, leaf sizes for a tree); nil when the structure has a
	// single partition.
	Partitions []int
	// Imbalance is max(partition size) / mean(live partition size): 1.0 for
	// a perfectly balanced cut, growing as churn concentrates mass. Zero
	// when fewer than two partitions are live.
	Imbalance float64
	// ArrivalSkew measures arrival-norm drift against the build-time
	// routing cutoffs: the fraction by which the most-loaded partition's
	// share of routed arrivals exceeds the uniform share, normalized to
	// [0,1] — 0 when arrivals spread like the build-time cut (each
	// partition gets ~1/S), 1 when every arrival lands in one partition
	// (the cutoffs no longer describe the data). Zero when nothing has
	// been routed.
	ArrivalSkew float64
	// BaselineScanPerUser is the locked build-time scan-rate baseline:
	// scanned candidates per served user measured over the first
	// DriftWindowUsers users after the last (re)structure. Zero until the
	// window fills (or when the structure is unmetered) — scan-regression
	// triggers stay silent until it locks.
	BaselineScanPerUser float64
	// ScannedSinceBaseline / UsersSinceBaseline are the post-lock meters
	// the current scan rate is computed from.
	ScannedSinceBaseline int64
	UsersSinceBaseline   int64
	// Retunes counts re-structures committed since Build.
	Retunes int
}

// Churn is the total mutation volume since the last (re)structure.
func (d DriftStats) Churn() int64 { return d.Adds + d.Removes }

// ScanPerUser is the current post-baseline scan rate (0 before any
// post-baseline user is served).
func (d DriftStats) ScanPerUser() float64 {
	if d.UsersSinceBaseline <= 0 {
		return 0
	}
	return float64(d.ScannedSinceBaseline) / float64(d.UsersSinceBaseline)
}

// ScanRegression is the relative scan-rate increase over the locked
// baseline ((current-baseline)/baseline), 0 while the baseline is unlocked
// or no post-baseline users have been served. Negative values (the
// structure got *cheaper*) are reported as measured.
func (d DriftStats) ScanRegression() float64 {
	if d.BaselineScanPerUser <= 0 || d.UsersSinceBaseline <= 0 {
		return 0
	}
	return (d.ScanPerUser() - d.BaselineScanPerUser) / d.BaselineScanPerUser
}

// Reporter is implemented by structures that measure their own drift
// (shard.Sharded, conetree.Index, serving.Server).
type Reporter interface {
	DriftStats() DriftStats
}

// Policy is the configurable trigger rule set Evaluate applies to a
// DriftStats measurement. For every threshold the zero value selects the
// documented default and a negative value disables that trigger; the zero
// Policy is therefore a sensible composite default, and a single-trigger
// policy (the cone tree's churn-fraction rule) disables the rest
// explicitly.
type Policy struct {
	// MaxImbalance fires "imbalance" when DriftStats.Imbalance exceeds it.
	// Default 1.5 (the most-loaded partition holds 50% more than its fair
	// share).
	MaxImbalance float64
	// MaxArrivalSkew fires "arrival-skew" when DriftStats.ArrivalSkew
	// exceeds it — the norm-cutoff misrouting trigger: arrivals
	// concentrating in one partition mean the build-time cutoffs no longer
	// cut the live distribution. Default 0.6.
	MaxArrivalSkew float64
	// MaxScanRegression fires "scan-regression" when the current scan rate
	// exceeds the locked baseline by this fraction. Default 0.25 (+25%
	// scanned candidates per user).
	MaxScanRegression float64
	// MaxChurnFraction fires "churn-fraction" when total churn exceeds this
	// fraction of the current corpus — the cone tree's
	// rebuild-on-imbalance rule generalized. Default 0: DISABLED (unlike
	// the other thresholds there is no universally sensible volume rule;
	// the composite retunes on measured symptoms instead).
	MaxChurnFraction float64
	// MinChurn gates every churn-derived trigger (imbalance, arrival-skew,
	// churn-fraction): none fires before this many mutations have been
	// absorbed, so a handful of arrivals cannot thrash the structure.
	// Default 32.
	MinChurn int64
	// MinWindowUsers gates the scan-regression trigger: it fires only
	// after this many post-baseline users have been served, so the rate
	// comparison never runs on a statistically empty window. Default 64.
	MinWindowUsers int64
}

// Default thresholds (see the Policy field docs).
const (
	DefaultMaxImbalance      = 1.5
	DefaultMaxArrivalSkew    = 0.6
	DefaultMaxScanRegression = 0.25
	DefaultMinChurn          = 32
	DefaultMinWindowUsers    = 64
)

// WithDefaults resolves zero-valued fields to the documented defaults and
// leaves negative (disabled) and explicit values alone.
func (p Policy) WithDefaults() Policy {
	if p.MaxImbalance == 0 {
		p.MaxImbalance = DefaultMaxImbalance
	}
	if p.MaxArrivalSkew == 0 {
		p.MaxArrivalSkew = DefaultMaxArrivalSkew
	}
	if p.MaxScanRegression == 0 {
		p.MaxScanRegression = DefaultMaxScanRegression
	}
	if p.MinChurn == 0 {
		p.MinChurn = DefaultMinChurn
	}
	if p.MinWindowUsers == 0 {
		p.MinWindowUsers = DefaultMinWindowUsers
	}
	return p
}

// Trigger identifies which rule fired and with what evidence.
type Trigger struct {
	// Reason is the rule name: "churn-fraction", "imbalance",
	// "arrival-skew", or "scan-regression".
	Reason string
	// Value is the measured quantity, Threshold the configured limit it
	// exceeded.
	Value, Threshold float64
}

func (t Trigger) String() string {
	if t.Reason == "" {
		return "none"
	}
	return fmt.Sprintf("%s (%.3g > %.3g)", t.Reason, t.Value, t.Threshold)
}

// Evaluate applies the policy to a measurement. Rules are checked in a
// fixed order — churn-fraction, imbalance, arrival-skew, scan-regression —
// and the first exceeded threshold is returned, so a caller acting on the
// result sees a deterministic reason for deterministic inputs.
func (p Policy) Evaluate(d DriftStats) (Trigger, bool) {
	p = p.WithDefaults()
	churn := d.Churn()
	if churn >= p.MinChurn {
		if p.MaxChurnFraction > 0 && d.Items > 0 &&
			float64(churn) > p.MaxChurnFraction*float64(d.Items) {
			return Trigger{Reason: "churn-fraction",
				Value: float64(churn) / float64(d.Items), Threshold: p.MaxChurnFraction}, true
		}
		if p.MaxImbalance > 0 && d.Imbalance > p.MaxImbalance {
			return Trigger{Reason: "imbalance", Value: d.Imbalance, Threshold: p.MaxImbalance}, true
		}
		if p.MaxArrivalSkew > 0 && d.ArrivalSkew > p.MaxArrivalSkew {
			return Trigger{Reason: "arrival-skew", Value: d.ArrivalSkew, Threshold: p.MaxArrivalSkew}, true
		}
	}
	if p.MaxScanRegression > 0 && d.BaselineScanPerUser > 0 &&
		d.UsersSinceBaseline >= p.MinWindowUsers {
		if reg := d.ScanRegression(); reg > p.MaxScanRegression {
			return Trigger{Reason: "scan-regression", Value: reg, Threshold: p.MaxScanRegression}, true
		}
	}
	return Trigger{}, false
}

// RetuneRequest parameterizes one re-structure.
type RetuneRequest struct {
	// Trigger records what fired (informational; stamped into the result).
	Trigger Trigger
	// Shards, when positive, forces the re-structure to this shard count —
	// the deterministic override (tests, operators). Zero defers to the
	// sweep below, or keeps the current count when no candidates are given.
	Shards int
	// ShardCandidates, when non-empty, is the S sweep: every candidate (the
	// current count is always included as the reference) is built and
	// measured on a sampled user subset, OPTIMUS-style, and the measured
	// winner is committed — with hysteresis: a challenger must beat the
	// incumbent by >10% to displace it, so timing noise cannot thrash S.
	ShardCandidates []int
	// SampleFraction is the fraction of users in the timing sample
	// (default 0.05, at least 16 users); SampleK the top-K depth measured
	// (default 10).
	SampleFraction float64
	SampleK        int
}

// ShardSample is one S-sweep measurement.
type ShardSample struct {
	Shards  int
	Elapsed time.Duration
	Chosen  bool
}

// RetuneResult describes a committed re-structure.
type RetuneResult struct {
	Trigger              Trigger
	OldShards, NewShards int
	// Samples holds the S-sweep timings (nil when no sweep ran).
	Samples []ShardSample
	// Attempts counts stage/commit rounds the convenience loop paid; >1
	// means mutations landed mid-stage and the retune was re-staged
	// against the moved corpus.
	Attempts int
}

// StagedRetune is an opaque staged re-structure: produced off-thread by a
// structure's stage phase, committed (or discarded) at its drain boundary.
// The concrete type belongs to the structure; holders only relay it.
type StagedRetune interface {
	// Result previews the RetuneResult a successful commit will report.
	Result() RetuneResult
}

// ErrRetuneStale is returned by a commit whose staged re-structure was
// built against a corpus that has since mutated; the caller re-stages
// against the moved corpus and tries again.
var ErrRetuneStale = errors.New("adapt: staged retune is stale (corpus mutated mid-stage)")

// Driver is the structure a Tuner supervises: it measures its own drift
// and knows how to re-structure itself (stage + commit at its own safe
// boundary). shard.Sharded and serving.Server both implement it.
type Driver interface {
	Reporter
	Retune(RetuneRequest) (RetuneResult, error)
}
