package adapt

import (
	"testing"
	"time"

	"optimus/internal/mat"
	"optimus/internal/mips"
	"optimus/internal/mutlog"
)

// TestTapLogKicksOnSizeFlush pins the direct flush-boundary wiring: a
// mutation log tapped with TapLog drives a tuner check from a MaxEvents size
// flush alone — no serving.Server, no drain, no explicit Flush. The tuner's
// poll interval is an hour, so any check observed can only have come from
// the flush tap's Kick.
func TestTapLogKicksOnSizeFlush(t *testing.T) {
	users := mat.New(2, 3)
	items := mat.New(4, 3)
	for i, v := range []float64{1, 0, 0, 0, 1, 0} {
		users.Data()[i] = v
	}
	for i := range items.Data() {
		items.Data()[i] = float64(i%3) + 1
	}
	solver := mips.NewNaive()
	if err := solver.Build(users, items); err != nil {
		t.Fatal(err)
	}
	applier, err := mutlog.Direct(solver)
	if err != nil {
		t.Fatal(err)
	}
	log, err := mutlog.New(applier, mutlog.Config{MaxEvents: 2, MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	d := &fakeDriver{}
	tuner, err := NewTuner(d, Config{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer tuner.Close()
	tuner.TapLog(log)

	// One pending event: below MaxEvents, nothing flushes, nothing checks.
	if _, err := log.Add(items.RowSlice(0, 1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := tuner.Stats().Checks; got != 0 {
		t.Fatalf("checks = %d before any flush, want 0", got)
	}

	// Second event reaches MaxEvents: the synchronous size flush inside Add
	// must kick the tuner through the tap.
	if _, err := log.Add(items.RowSlice(1, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for tuner.Stats().Checks < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("size flush never drove a tuner check (checks = %d)", tuner.Stats().Checks)
		}
		time.Sleep(time.Millisecond)
	}
	if st := log.Stats(); st.Flushes < 1 {
		t.Fatalf("log flushes = %d, want >= 1 (the size flush)", st.Flushes)
	}
}
