package adapt

import (
	"fmt"
	"sync"
	"time"
)

// Config configures a Tuner.
type Config struct {
	// Policy is the trigger rule set (zero value = documented defaults).
	Policy Policy
	// Interval is the background poll period. 0 selects the 250ms default;
	// negative disables the background goroutine entirely — the owner
	// drives the tuner synchronously through Check, the deterministic mode
	// tests and benchmarks use.
	Interval time.Duration
	// Request is the RetuneRequest template a firing trigger dispatches
	// (its Trigger field is overwritten with the one that fired). The zero
	// value re-cuts at the current shard count with default sampling.
	Request RetuneRequest
	// Disabled is the lesion switch: the tuner keeps measuring and
	// counting triggers but never dispatches a retune — the "what would
	// adaptation have done" arm of the drift ablation.
	Disabled bool
}

// DefaultInterval is the background poll period when Config leaves it zero.
const DefaultInterval = 250 * time.Millisecond

// Stats is a snapshot of tuner counters.
type Stats struct {
	// Checks counts policy evaluations (background ticks, kicks, and
	// explicit Check calls); Triggers how many found a rule exceeded;
	// Retunes how many dispatched re-structures committed; Failures how
	// many dispatches errored.
	Checks, Triggers, Retunes, Failures int64
	// LastTrigger is the most recent firing trigger (zero Reason if none
	// yet); LastResult the most recent committed retune's result; LastErr
	// the most recent dispatch error (nil once a dispatch succeeds).
	LastTrigger Trigger
	LastResult  RetuneResult
	LastErr     error
}

// Tuner supervises one Driver: it polls DriftStats against the Policy and
// dispatches a Retune when a trigger fires. Create with NewTuner, stop with
// Close. The background loop (Config.Interval >= 0) makes adaptation
// autonomous; Check runs one evaluation synchronously, and Kick nudges the
// background loop to evaluate now — the mutation-log tap calls it right
// behind a flushed batch so a trigger tripped by that batch is seen
// immediately instead of one poll period later.
type Tuner struct {
	d   Driver
	cfg Config

	mu    sync.Mutex // serializes Check bodies and guards stats
	stats Stats

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewTuner starts a tuner over the driver.
func NewTuner(d Driver, cfg Config) (*Tuner, error) {
	if d == nil {
		return nil, fmt.Errorf("adapt: nil driver")
	}
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	t := &Tuner{
		d:    d,
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Interval > 0 {
		go t.loop()
	} else {
		close(t.done)
	}
	return t, nil
}

// Check runs one evaluate-and-maybe-retune round synchronously: measure
// drift, apply the policy, and — unless Config.Disabled — dispatch the
// retune when a trigger fires. It reports the committed result (fired true
// only when a retune actually committed) and the dispatch error if the
// retune failed. Safe concurrently with the background loop; rounds are
// serialized.
func (t *Tuner) Check() (RetuneResult, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Checks++
	d := t.d.DriftStats()
	tr, fire := t.cfg.Policy.Evaluate(d)
	if !fire {
		return RetuneResult{}, false, nil
	}
	t.stats.Triggers++
	t.stats.LastTrigger = tr
	if t.cfg.Disabled {
		return RetuneResult{}, false, nil
	}
	req := t.cfg.Request
	req.Trigger = tr
	res, err := t.d.Retune(req)
	if err != nil {
		t.stats.Failures++
		t.stats.LastErr = err
		return RetuneResult{}, false, err
	}
	t.stats.Retunes++
	t.stats.LastResult = res
	t.stats.LastErr = nil
	return res, true, nil
}

// FlushTap is the structural shape of a mutation log's flush observer hook
// (mutlog.Log.SetObserver): the tap calls its function after every
// successfully applied batch, with the log's lock held. Named structurally
// so adapt stays decoupled from the mutlog package.
type FlushTap interface {
	SetObserver(fn func(adds, removes int))
}

// TapLog wires a mutation log's flush boundary straight into Kick: every
// applied batch — a drain-triggered flush, a MaxEvents size flush, a
// MaxDelay background flush, an explicit Flush — nudges the background loop
// to evaluate the policy immediately instead of one poll period later. Kick
// is a non-blocking coalescing send, satisfying the observer's
// must-not-call-back contract. This is the single wiring point the serving
// layer (and any standalone log owner) uses; installing a tap replaces any
// previous observer on the log.
func (t *Tuner) TapLog(l FlushTap) {
	l.SetObserver(func(int, int) { t.Kick() })
}

// Kick asks the background loop to run a check now instead of waiting out
// the poll interval. Non-blocking and coalescing; a no-op without a
// background loop (Config.Interval < 0).
func (t *Tuner) Kick() {
	select {
	case t.kick <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the tuner's counters.
func (t *Tuner) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Close stops the background loop and waits for any in-flight check to
// finish. Idempotent.
func (t *Tuner) Close() {
	t.mu.Lock()
	select {
	case <-t.stop:
		t.mu.Unlock()
		return
	default:
		close(t.stop)
	}
	t.mu.Unlock()
	<-t.done
}

func (t *Tuner) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-tick.C:
		case <-t.kick:
		}
		// Dispatch errors are recorded in Stats (LastErr/Failures); the
		// loop keeps polling — a stale-stage loss or a transient build
		// failure is retried from fresh measurements next round.
		_, _, _ = t.Check()
	}
}
