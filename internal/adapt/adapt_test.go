package adapt

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWithDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.MaxImbalance != DefaultMaxImbalance || p.MaxArrivalSkew != DefaultMaxArrivalSkew ||
		p.MaxScanRegression != DefaultMaxScanRegression || p.MinChurn != DefaultMinChurn ||
		p.MinWindowUsers != DefaultMinWindowUsers {
		t.Fatalf("zero policy did not resolve to defaults: %+v", p)
	}
	if p.MaxChurnFraction != 0 {
		t.Fatalf("churn-fraction default must stay disabled, got %v", p.MaxChurnFraction)
	}
	q := Policy{MaxImbalance: -1, MinChurn: 7, MaxScanRegression: 0.5}.WithDefaults()
	if q.MaxImbalance != -1 || q.MinChurn != 7 || q.MaxScanRegression != 0.5 {
		t.Fatalf("explicit and disabled values must pass through: %+v", q)
	}
}

// TestEvaluateMatrix walks every trigger, the gates in front of them, and
// the documented evaluation order (churn-fraction, imbalance, arrival-skew,
// scan-regression: first exceeded wins).
func TestEvaluateMatrix(t *testing.T) {
	churned := DriftStats{Adds: 40, Removes: 24, Items: 100} // churn 64 >= default MinChurn
	cases := []struct {
		name   string
		p      Policy
		d      DriftStats
		reason string // "" = must not fire
	}{
		{"quiet", Policy{}, DriftStats{}, ""},
		{"imbalance", Policy{}, with(churned, func(d *DriftStats) { d.Imbalance = 2.0 }), "imbalance"},
		{"imbalance-at-threshold", Policy{}, with(churned, func(d *DriftStats) { d.Imbalance = 1.5 }), ""},
		{"imbalance-below-min-churn", Policy{}, DriftStats{Adds: 8, Imbalance: 9}, ""},
		{"imbalance-disabled", Policy{MaxImbalance: -1}, with(churned, func(d *DriftStats) { d.Imbalance = 9 }), ""},
		{"arrival-skew", Policy{}, with(churned, func(d *DriftStats) { d.ArrivalSkew = 0.9 }), "arrival-skew"},
		{"arrival-skew-disabled", Policy{MaxArrivalSkew: -1}, with(churned, func(d *DriftStats) { d.ArrivalSkew = 0.9 }), ""},
		{"churn-fraction", Policy{MaxChurnFraction: 0.5}, churned, "churn-fraction"},
		{"churn-fraction-under", Policy{MaxChurnFraction: 0.7}, churned, ""},
		{"order-churn-beats-imbalance", Policy{MaxChurnFraction: 0.5},
			with(churned, func(d *DriftStats) { d.Imbalance = 9 }), "churn-fraction"},
		{"order-imbalance-beats-skew", Policy{},
			with(churned, func(d *DriftStats) { d.Imbalance = 9; d.ArrivalSkew = 1 }), "imbalance"},
		{"scan-regression", Policy{},
			DriftStats{BaselineScanPerUser: 100, ScannedSinceBaseline: 100 * 130, UsersSinceBaseline: 100},
			"scan-regression"},
		{"scan-regression-needs-window", Policy{},
			DriftStats{BaselineScanPerUser: 100, ScannedSinceBaseline: 10 * 900, UsersSinceBaseline: 10}, ""},
		{"scan-regression-needs-baseline", Policy{},
			DriftStats{ScannedSinceBaseline: 100 * 900, UsersSinceBaseline: 100}, ""},
		{"scan-regression-under", Policy{},
			DriftStats{BaselineScanPerUser: 100, ScannedSinceBaseline: 100 * 110, UsersSinceBaseline: 100}, ""},
		{"scan-regression-no-churn-gate", Policy{}, // fires even with zero churn
			DriftStats{BaselineScanPerUser: 100, ScannedSinceBaseline: 100 * 200, UsersSinceBaseline: 100},
			"scan-regression"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, fired := tc.p.Evaluate(tc.d)
			if fired != (tc.reason != "") {
				t.Fatalf("fired=%v trigger=%v, want reason %q", fired, tr, tc.reason)
			}
			if fired && tr.Reason != tc.reason {
				t.Fatalf("fired %q, want %q", tr.Reason, tc.reason)
			}
			if fired && !strings.Contains(tr.String(), tc.reason) {
				t.Fatalf("String() = %q does not name the rule", tr.String())
			}
		})
	}
	if s := (Trigger{}).String(); s != "none" {
		t.Fatalf("zero trigger String() = %q, want none", s)
	}
}

func with(d DriftStats, f func(*DriftStats)) DriftStats {
	f(&d)
	return d
}

func TestDriftStatsDerived(t *testing.T) {
	d := DriftStats{BaselineScanPerUser: 50, ScannedSinceBaseline: 600, UsersSinceBaseline: 10}
	if got := d.ScanPerUser(); got != 60 {
		t.Fatalf("ScanPerUser = %v, want 60", got)
	}
	if got := d.ScanRegression(); got != 0.2 {
		t.Fatalf("ScanRegression = %v, want 0.2", got)
	}
	if got := (DriftStats{}).ScanRegression(); got != 0 {
		t.Fatalf("unlocked baseline regression = %v, want 0", got)
	}
}

// fakeDriver scripts DriftStats answers and records retune dispatches.
type fakeDriver struct {
	mu       sync.Mutex
	stats    DriftStats
	retunes  int
	lastReq  RetuneRequest
	failWith error
}

func (f *fakeDriver) DriftStats() DriftStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakeDriver) Retune(req RetuneRequest) (RetuneResult, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failWith != nil {
		return RetuneResult{}, f.failWith
	}
	f.retunes++
	f.lastReq = req
	f.stats = DriftStats{Items: f.stats.Items, Retunes: f.stats.Retunes + 1} // commit resets drift
	return RetuneResult{Trigger: req.Trigger, OldShards: 4, NewShards: 4}, nil
}

func (f *fakeDriver) set(d DriftStats) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats = d
}

func TestTunerCheck(t *testing.T) {
	d := &fakeDriver{}
	tn, err := NewTuner(d, Config{Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()

	if _, fired, err := tn.Check(); fired || err != nil {
		t.Fatalf("quiet check fired=%v err=%v", fired, err)
	}
	d.set(DriftStats{Adds: 64, Items: 100, Imbalance: 3})
	res, fired, err := tn.Check()
	if err != nil || !fired {
		t.Fatalf("drifted check fired=%v err=%v", fired, err)
	}
	if res.Trigger.Reason != "imbalance" || d.lastReq.Trigger.Reason != "imbalance" {
		t.Fatalf("trigger not threaded through dispatch: res=%v req=%v", res.Trigger, d.lastReq.Trigger)
	}
	// The driver reset its drift on commit; the next check must stay quiet.
	if _, fired, _ := tn.Check(); fired {
		t.Fatal("check fired again after the commit reset drift")
	}
	st := tn.Stats()
	if st.Checks != 3 || st.Triggers != 1 || st.Retunes != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTunerDisabledAndFailures(t *testing.T) {
	d := &fakeDriver{}
	d.set(DriftStats{Adds: 64, Items: 100, Imbalance: 3})
	lesion, err := NewTuner(d, Config{Interval: -1, Disabled: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lesion.Close()
	if _, fired, err := lesion.Check(); fired || err != nil {
		t.Fatalf("disabled tuner dispatched: fired=%v err=%v", fired, err)
	}
	if st := lesion.Stats(); st.Triggers != 1 || st.Retunes != 0 {
		t.Fatalf("lesion must count triggers without retuning: %+v", st)
	}
	if d.retunes != 0 {
		t.Fatal("lesion tuner reached the driver")
	}

	boom := errors.New("boom")
	d.failWith = boom
	live, err := NewTuner(d, Config{Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if _, fired, err := live.Check(); fired || !errors.Is(err, boom) {
		t.Fatalf("failing dispatch: fired=%v err=%v", fired, err)
	}
	if st := live.Stats(); st.Failures != 1 || !errors.Is(st.LastErr, boom) {
		t.Fatalf("failure not recorded: %+v", st)
	}
}

func TestTunerBackgroundKick(t *testing.T) {
	d := &fakeDriver{}
	d.set(DriftStats{Adds: 64, Items: 100, Imbalance: 3})
	// A long interval isolates the kick path: the test would time out
	// waiting for the ticker.
	tn, err := NewTuner(d, Config{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer tn.Close()
	tn.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for tn.Stats().Retunes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kicked background loop never retuned")
		}
		time.Sleep(time.Millisecond)
	}
	tn.Close() // idempotent with the deferred Close
}
