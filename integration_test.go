package optimus

// Cross-module integration tests: every solver, every dataset regime, one
// agreement matrix. These are the tests a downstream adopter would trust
// before swapping solvers in production.

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

// allSolvers builds one of each exact solver through the public facade,
// including the item-sharded composites (which must agree with everything
// else at any shard count and partitioning).
func allSolvers() []Solver {
	return []Solver{
		NewBMM(BMMConfig{}),
		NewMaximus(MaximusConfig{Seed: 9}),
		NewMaximus(MaximusConfig{Seed: 9, DisableItemBlocking: true}),
		NewLEMP(LEMPConfig{Seed: 9}),
		NewFexipro(FexiproConfig{Variant: FexiproSI}),
		NewFexipro(FexiproConfig{Variant: FexiproSIR}),
		NewConeTree(ConeTreeConfig{}),
		NewNaive(),
		NewSharded(ShardedConfig{
			Shards:  3,
			Factory: func() Solver { return NewBMM(BMMConfig{}) },
		}),
		NewSharded(ShardedConfig{
			Shards:      4,
			Partitioner: ShardByNorm(),
			Factory:     func() Solver { return NewMaximus(MaximusConfig{Seed: 9}) },
		}),
		// Two-wave threshold propagation (ByNorm + floor-capable sub-solver)
		// and its single-wave lesion must both agree with everything else.
		NewSharded(ShardedConfig{
			Shards:      3,
			Partitioner: ShardByNorm(),
			Factory:     func() Solver { return NewLEMP(LEMPConfig{Seed: 9}) },
		}),
		NewSharded(ShardedConfig{
			Shards:              3,
			Partitioner:         ShardByNorm(),
			DisableFloorSeeding: true,
			Factory:             func() Solver { return NewLEMP(LEMPConfig{Seed: 9}) },
		}),
	}
}

// TestAllSolversAgreeOnEveryRegime runs the full solver set over one model
// per dataset family and checks that all of them return score-identical
// exact rankings.
func TestAllSolversAgreeOnEveryRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("integration matrix is not short")
	}
	models := []string{
		"netflix-dsgd-50", "netflix-nomad-25", "netflix-bpr-25",
		"r2-nomad-25", "kdd-nomad-25", "kdd-ref-51", "glove-50",
	}
	const k = 7
	for _, name := range models {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg, err := DatasetByName(name)
			if err != nil {
				t.Fatal(err)
			}
			ds, err := GenerateDataset(cfg.Scale(0.05))
			if err != nil {
				t.Fatal(err)
			}
			var reference [][]Entry
			for _, s := range allSolvers() {
				if err := s.Build(ds.Users, ds.Items); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				res, err := s.QueryAll(k)
				if err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if err := VerifyAll(ds.Users, ds.Items, res, k, 1e-8); err != nil {
					t.Fatalf("%s: %v", s.Name(), err)
				}
				if reference == nil {
					reference = res
					continue
				}
				for u := range reference {
					for r := range reference[u] {
						a, b := reference[u][r].Score, res[u][r].Score
						if math.Abs(a-b) > 1e-8*(1+math.Abs(a)) {
							t.Fatalf("%s: user %d rank %d score %v, reference %v",
								s.Name(), u, r, b, a)
						}
					}
				}
			}
		})
	}
}

// TestConcurrentQueriesOnSharedIndex pins the "read-only after Build, safe
// for concurrent queries" contract for every index — including LEMP, whose
// lazy per-K tuning is the one mutable-after-Build structure (guarded by a
// mutex). Run with -race to make this meaningful.
func TestConcurrentQueriesOnSharedIndex(t *testing.T) {
	cfg, err := DatasetByName("r2-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allSolvers() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			if err := s.Build(ds.Users, ds.Items); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Different goroutines use different K so LEMP's tuning
					// cache is written concurrently.
					k := 1 + g%4
					ids := []int{g % ds.Users.Rows(), (g * 7) % ds.Users.Rows()}
					res, err := s.Query(ids, k)
					if err != nil {
						errs <- err
						return
					}
					for i, u := range ids {
						if err := VerifyTopK(ds.Users.Row(u), ds.Items, res[i], k, 1e-8); err != nil {
							errs <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestOptimusAgainstEveryIndex runs the optimizer with each index type as
// its candidate and checks the final batch answers stay exact regardless of
// which side wins.
func TestOptimusAgainstEveryIndex(t *testing.T) {
	cfg, err := DatasetByName("netflix-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	indexes := []Solver{
		NewMaximus(MaximusConfig{Seed: 3}),
		NewLEMP(LEMPConfig{Seed: 3}),
		NewFexipro(FexiproConfig{Variant: FexiproSI}),
		NewFexipro(FexiproConfig{Variant: FexiproSIR}),
		NewConeTree(ConeTreeConfig{}),
	}
	for _, idx := range indexes {
		idx := idx
		t.Run(idx.Name(), func(t *testing.T) {
			opt := NewOptimus(OptimusConfig{
				SampleFraction: 0.1, L2CacheBytes: 1 << 10, Seed: 4,
			}, idx)
			dec, res, err := opt.Run(ds.Users, ds.Items, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyAll(ds.Users, ds.Items, res, 4, 1e-8); err != nil {
				t.Fatalf("winner %s: %v", dec.Winner, err)
			}
		})
	}
}

// TestDatasetRegimesDriveOptimusDecisions is the end-to-end story of the
// paper: BMM-regime models should steer OPTIMUS to BMM, index-regime models
// to the index, through the public API alone.
func TestDatasetRegimesDriveOptimusDecisions(t *testing.T) {
	if testing.Short() {
		t.Skip("decision test is not short")
	}
	// The index-friendly case comes from the registry (kdd regime, ~10×
	// margin). The BMM-friendly case is an explicit unprunable config —
	// isotropic users, flat norms — because the registry's Netflix margins
	// are deliberately thin (that is the paper's point) and too close to
	// assert on under timing noise.
	unprunable := DatasetConfig{
		Name: "unprunable", Users: 1500, Items: 1200, Factors: 32,
		TrueClusters: 4, UserSpread: 2.0, NormSigma: 0.01, ItemAlign: 0, Seed: 42,
	}
	kdd, err := DatasetByName("kdd-nomad-25")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		cfg    DatasetConfig
		expect string
	}{
		{unprunable, "BMM"},
		{kdd.Scale(0.25), "MAXIMUS"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.cfg.Name, func(t *testing.T) {
			ds, err := GenerateDataset(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// The decision is a wall-clock measurement; on a loaded or
			// race-instrumented runner a single sample can flip a close
			// crossover, so a wrong winner gets two re-measurements
			// before the test fails. A real regime regression fails all
			// three; scheduler noise does not.
			const attempts = 3
			for attempt := 1; ; attempt++ {
				opt := NewOptimus(OptimusConfig{
					SampleFraction: 0.05, L2CacheBytes: 8 << 10, Seed: 5,
				}, NewMaximus(MaximusConfig{Seed: 5}))
				dec, res, err := opt.Run(ds.Users, ds.Items, 1)
				if err != nil {
					t.Fatal(err)
				}
				if err := VerifyAll(ds.Users, ds.Items, res, 1, 1e-9); err != nil {
					t.Fatal(err)
				}
				if dec.Winner == tc.expect {
					break
				}
				bmm, _ := dec.EstimateFor("BMM")
				mx, _ := dec.EstimateFor("MAXIMUS")
				if attempt == attempts {
					t.Fatalf("winner %s, want %s in %d attempts (BMM est %v, MAXIMUS est %v)",
						dec.Winner, tc.expect, attempts, bmm.Total, mx.Total)
				}
				t.Logf("attempt %d: winner %s, want %s (BMM est %v, MAXIMUS est %v); re-measuring",
					attempt, dec.Winner, tc.expect, bmm.Total, mx.Total)
			}
		})
	}
}

// TestServerOverOptimusChoice wires the serving layer over whichever solver
// OPTIMUS picks — the full production composition.
func TestServerOverOptimusChoice(t *testing.T) {
	cfg, err := DatasetByName("r2-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	idx := NewMaximus(MaximusConfig{Seed: 6})
	opt := NewOptimus(OptimusConfig{SampleFraction: 0.1, L2CacheBytes: 1 << 10, Seed: 6}, idx)
	dec, _, err := opt.Run(ds.Users, ds.Items, 3)
	if err != nil {
		t.Fatal(err)
	}
	var chosen Solver = NewBMM(BMMConfig{})
	if dec.Winner == "MAXIMUS" {
		chosen = idx
	}
	if err := chosen.Build(ds.Users, ds.Items); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(chosen, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.Query(context.Background(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTopK(ds.Users.Row(0), ds.Items, res, 3, 1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestServerOverShardedPlanner routes serving-layer batches through the
// item-sharded executor with per-shard OPTIMUS planning — the full
// production stack: micro-batching front end, shard fan-out, per-shard
// strategy choice, k-way merge.
func TestServerOverShardedPlanner(t *testing.T) {
	cfg, err := DatasetByName("r2-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(ShardedConfig{
		Shards:      2,
		Partitioner: ShardByNorm(),
		Planner: NewShardPlanner(OptimusConfig{
			SampleFraction: 0.1, L2CacheBytes: 1 << 10, Seed: 8,
		}, 3, func() Solver { return NewMaximus(MaximusConfig{Seed: 8}) }),
	})
	if err := sh.Build(ds.Users, ds.Items); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sh, ServerConfig{MaxBatch: 16, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			u := g % ds.Users.Rows()
			k := 1 + g%5
			res, err := srv.Query(context.Background(), u, k)
			if err != nil {
				errs <- err
				return
			}
			if err := VerifyTopK(ds.Users.Row(u), ds.Items, res, k, 1e-9); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMutableLifecycleEndToEnd drives the full vertical through the public
// facade: a planner-built by-norm composite behind the micro-batching
// server, live item churn through Server.Mutate, dynamic user arrival
// through Sharded.AddUsers, and the VerifyMutation oracle at every step —
// the downstream adopter's mutable-corpus smoke test.
func TestMutableLifecycleEndToEnd(t *testing.T) {
	cfg, err := DatasetByName("r2-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	poolCfg := cfg.Scale(0.05)
	poolCfg.Seed += 977
	pool, err := GenerateDataset(poolCfg)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5

	sh := NewSharded(ShardedConfig{
		Shards:      3,
		Partitioner: ShardByNorm(),
		Factory:     func() Solver { return NewLEMP(LEMPConfig{Seed: 9}) },
	})
	if err := sh.Build(ds.Users, ds.Items); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sh, ServerConfig{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Churn the catalog through the serving layer.
	arrivals := pool.Items.RowSlice(0, 6)
	corpus := ds.Items
	if err := srv.Mutate(func(m ItemMutator) error {
		if _, err := m.AddItems(arrivals); err != nil {
			return err
		}
		corpus = AppendMatrixRows(corpus, arrivals)
		if err := m.RemoveItems([]int{2, 3, corpus.Rows() - 1}); err != nil {
			return err
		}
		corpus = RemoveMatrixRows(corpus, []int{2, 3, corpus.Rows() - 1})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if g := srv.Stats().Generation; g != 1 {
		t.Fatalf("server generation = %d, want 1", g)
	}
	if g := sh.Generation(); g != 2 {
		t.Fatalf("solver generation = %d, want 2", g)
	}
	if err := VerifyMutation(sh, NewNaive(), ds.Users, corpus, k, 1e-9); err != nil {
		t.Fatal(err)
	}

	// New users arrive; the server answers them exactly (after the swap).
	users := ds.Users
	newUsers := pool.Users.RowSlice(0, 4)
	if err := srv.Mutate(func(ItemMutator) error {
		_, err := sh.AddUsers(newUsers)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	users = AppendMatrixRows(users, newUsers)
	res, err := srv.Query(context.Background(), users.Rows()-1, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTopK(users.Row(users.Rows()-1), corpus, res, k, 1e-9); err != nil {
		t.Fatal(err)
	}
	if err := VerifyMutation(sh, NewNaive(), users, corpus, k, 1e-9); err != nil {
		t.Fatal(err)
	}
}
