package optimus

// The Generation contract, pinned across every implementation (the audit
// behind the batched mutation log): the stamp is 0 after Build, advances by
// exactly one per successful AddItems or RemoveItems, and by nothing else —
// failed mutations and AddUsers (user arrival never renumbers item ids)
// leave it untouched, and a re-Build resets it. Serving-layer staleness
// detection (Server.Stats.Generation, the mutation log's id bookkeeping)
// leans on precisely these semantics.

import "testing"

// generationSolvers returns all seven ItemMutator implementations: the five
// real solvers, the Naive reference, and the sharded composite.
func generationSolvers() map[string]Solver {
	return map[string]Solver{
		"BMM":      NewBMM(BMMConfig{}),
		"MAXIMUS":  NewMaximus(MaximusConfig{Seed: 2}),
		"LEMP":     NewLEMP(LEMPConfig{Seed: 2}),
		"ConeTree": NewConeTree(ConeTreeConfig{}),
		"FEXIPRO":  NewFexipro(FexiproConfig{}),
		"Naive":    NewNaive(),
		"Sharded": NewSharded(ShardedConfig{
			Shards:      3,
			Partitioner: ShardByNorm(),
			Factory:     func() Solver { return NewBMM(BMMConfig{}) },
		}),
	}
}

func TestGenerationContract(t *testing.T) {
	cfg, err := DatasetByName("r2-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.04))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := GenerateDataset(cfg.Scale(0.02))
	if err != nil {
		t.Fatal(err)
	}
	for name, solver := range generationSolvers() {
		t.Run(name, func(t *testing.T) {
			mut, ok := solver.(ItemMutator)
			if !ok {
				t.Fatalf("%s is not an ItemMutator", name)
			}
			adder, ok := solver.(UserAdder)
			if !ok {
				t.Fatalf("%s is not a UserAdder", name)
			}
			if err := solver.Build(ds.Users, ds.Items); err != nil {
				t.Fatal(err)
			}
			check := func(step string, want uint64) {
				t.Helper()
				if got := mut.Generation(); got != want {
					t.Fatalf("%s: generation = %d, want %d", step, got, want)
				}
			}
			check("after Build", 0)
			if _, err := mut.AddItems(pool.Items.RowSlice(0, 3)); err != nil {
				t.Fatal(err)
			}
			check("after AddItems", 1)
			if err := mut.RemoveItems([]int{1, 4}); err != nil {
				t.Fatal(err)
			}
			check("after RemoveItems", 2)
			// AddUsers tracks the user side; the item stamp must not move.
			if _, err := adder.AddUsers(pool.Users.RowSlice(0, 2)); err != nil {
				t.Fatal(err)
			}
			check("after AddUsers", 2)
			// Failed mutations leave the stamp (and the index) untouched.
			if _, err := mut.AddItems(nil); err == nil {
				t.Fatal("nil AddItems succeeded")
			}
			check("after failed AddItems", 2)
			if err := mut.RemoveItems([]int{-1}); err == nil {
				t.Fatal("out-of-range RemoveItems succeeded")
			}
			check("after failed RemoveItems", 2)
			nItems := ds.Items.Rows() + 3 - 2
			if err := mut.RemoveItems(rangeIDs(nItems)); err == nil {
				t.Fatal("remove-everything succeeded")
			}
			check("after rejected remove-everything", 2)
			// A fresh Build resets the stamp.
			if err := solver.Build(ds.Users, ds.Items); err != nil {
				t.Fatal(err)
			}
			check("after re-Build", 0)
		})
	}
}

func rangeIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// TestGenerationAgreesWithServing couples the solver stamp to the serving
// generation: one coalesced Mutate over several events is one serving tick,
// while the solver stamp counts the events — and user-arrival maintenance
// ticks neither.
func TestGenerationAgreesWithServing(t *testing.T) {
	cfg, err := DatasetByName("r2-nomad-10")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(cfg.Scale(0.04))
	if err != nil {
		t.Fatal(err)
	}
	solver := NewNaive()
	if err := solver.Build(ds.Users, ds.Items); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(solver, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Mutate(func(m ItemMutator) error {
		if _, err := m.AddItems(ds.Items.RowSlice(0, 2)); err != nil {
			return err
		}
		return m.RemoveItems([]int{0})
	}); err != nil {
		t.Fatal(err)
	}
	if g, s := solver.Generation(), srv.Stats().Generation; g != 2 || s != 1 {
		t.Fatalf("solver generation %d (want 2: two events), serving generation %d (want 1: one batch)", g, s)
	}
	if err := srv.Mutate(func(m ItemMutator) error {
		_, err := m.(UserAdder).AddUsers(ds.Users.RowSlice(0, 1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if g, s := solver.Generation(), srv.Stats().Generation; g != 2 || s != 1 {
		t.Fatalf("user arrival moved a generation: solver %d, serving %d", g, s)
	}
}
