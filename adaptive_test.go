package optimus

// Acceptance tests for drift-driven adaptive re-structuring: the scripted
// trending-catalog scenario (norm-inflated arrivals, low-norm retirements on
// a kdd-style norm-skewed corpus) must decay a frozen structure's scan rate
// by a wide margin while the tuner holds it at a fresh build's rate; forced
// retunes must answer entry-for-entry like a from-scratch build over the
// mutated corpus for every sub-solver family and shard count; and retunes
// must commit safely under live query and mutation load (run with -race).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// driftRow returns a vector of the given Euclidean norm whose direction is a
// shared dominant axis plus small noise. Clustered directions keep inner
// products near the Cauchy–Schwarz ceiling, so norm tiers translate into
// score tiers — the kdd-style geometry the by-norm cut (and the paper's
// norm-skew observation) exploits.
func driftRow(rng *rand.Rand, d int, norm float64) []float64 {
	v := make([]float64, d)
	v[0] = 1
	var s float64 = 1
	for j := 1; j < d; j++ {
		v[j] = 0.15 * rng.NormFloat64()
		s += v[j] * v[j]
	}
	scale := norm / math.Sqrt(s)
	for j := range v {
		v[j] *= scale
	}
	return v
}

// driftMatrix builds n rows with geometrically decaying norms from top — a
// heavy-tailed norm profile over a shared direction cluster.
func driftMatrix(t testing.TB, rng *rand.Rand, n, d int, top, decay float64) *Matrix {
	t.Helper()
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = driftRow(rng, d, top*math.Pow(decay, float64(i)))
	}
	m, err := MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// bottomNormRows returns the ids of the n smallest-norm rows, ascending by
// norm with index tie-break — the deterministic retirement half of the
// trending-catalog churn.
func bottomNormRows(m *Matrix, n int) []int {
	norms := m.RowNorms()
	ids := make([]int, 0, n)
	used := make(map[int]bool, n)
	for len(ids) < n && len(ids) < len(norms) {
		best := -1
		for i, v := range norms {
			if used[i] {
				continue
			}
			if best < 0 || v < norms[best] {
				best = i
			}
		}
		used[best] = true
		ids = append(ids, best)
	}
	return ids
}

// maxNorm returns the largest row norm.
func maxNorm(m *Matrix) float64 {
	var mx float64
	for _, v := range m.RowNorms() {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// trendChurn applies one deterministic trending-catalog round to s: retire
// the batch lowest-norm items, add batch arrivals whose norms start above
// the standing catalog's ceiling (so the fixed routing cutoffs funnel every
// one of them into the head shard) and decay geometrically within the batch
// (so a *fresh* cut of the mutated corpus is just as tiered as the build
// corpus — the damage is purely structural).
func trendChurn(s *Sharded, rng *rand.Rand, batch, d int) error {
	if err := s.RemoveItems(bottomNormRows(s.Items(), batch)); err != nil {
		return err
	}
	top := maxNorm(s.Items()) * 1.4
	rows := make([][]float64, batch)
	for j := range rows {
		rows[j] = driftRow(rng, d, top*math.Pow(0.99, float64(j)))
	}
	add, err := MatrixFromRows(rows)
	if err != nil {
		return err
	}
	_, err = s.AddItems(add)
	return err
}

// driftSharded builds the scenario composite: by-norm cut, BMM sub-solvers
// (no intra-shard pruning, so the cut and the wave floors are the only
// structure — a stale cut's cost lands fully on the scan meter), pinned
// two-wave schedule for deterministic scan counts.
func driftSharded(t *testing.T, users, items *Matrix, shards int) *Sharded {
	t.Helper()
	s := NewSharded(ShardedConfig{
		Shards:      shards,
		Partitioner: ShardByNorm(),
		Factory:     func() Solver { return NewBMM(BMMConfig{}) },
		Schedule:    ScheduleTwoWave,
	})
	if err := s.Build(users, items); err != nil {
		t.Fatal(err)
	}
	return s
}

// scanPerUser measures one exact QueryAll(k) sweep's scan rate.
func scanPerUser(t *testing.T, s *Sharded, users *Matrix, k int) float64 {
	t.Helper()
	before := s.ScanStats().Scanned
	res, err := s.QueryAll(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAll(users, s.Items(), res, k, 1e-8); err != nil {
		t.Fatalf("exactness: %v", err)
	}
	return float64(s.ScanStats().Scanned-before) / float64(users.Rows())
}

// TestAdaptiveDriftRecovery is the headline acceptance scenario: under
// seeded trending-catalog churn the tuner must fire and hold the end-state
// scan rate within 10% of a fresh build over the mutated corpus, while the
// lesion arm (same tuner, Disabled) decays by at least 40% against that
// same fresh baseline. Answers are verified exact at every step, and the
// mutation generation must advance identically in both arms — retunes swap
// structure, never corpus, so they tick the epoch and not the generation.
func TestAdaptiveDriftRecovery(t *testing.T) {
	const (
		nItems = 240
		nUsers = 60
		d      = 16
		sCount = 4
		k      = 10
		rounds = 4
		batch  = 30
	)
	users := driftMatrix(t, rand.New(rand.NewSource(41)), nUsers, d, 1, 1)

	run := func(lesion bool) (end, fresh float64, retunes int, gen uint64) {
		rng := rand.New(rand.NewSource(97))
		items := driftMatrix(t, rand.New(rand.NewSource(7)), nItems, d, 50, 0.98)
		s := driftSharded(t, users, items, sCount)
		tuner, err := NewAdaptiveTuner(s, AdaptiveConfig{Interval: -1, Disabled: lesion})
		if err != nil {
			t.Fatal(err)
		}
		defer tuner.Close()
		scanPerUser(t, s, users, k) // pre-churn sweep; also arms the baseline window
		if _, _, err := tuner.Check(); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			if err := trendChurn(s, rng, batch, d); err != nil {
				t.Fatal(err)
			}
			scanPerUser(t, s, users, k)
			if _, _, err := tuner.Check(); err != nil {
				t.Fatal(err)
			}
		}
		end = scanPerUser(t, s, users, k)

		ref := driftSharded(t, users, s.Items(), sCount)
		fresh = scanPerUser(t, ref, users, k)
		return end, fresh, s.Retunes(), s.Generation()
	}

	tunedEnd, fresh, retunes, tunedGen := run(false)
	lesionEnd, lesionFresh, lesionRetunes, lesionGen := run(true)

	if retunes < 1 {
		t.Fatalf("tuner arm committed no retunes under %d churn rounds", rounds)
	}
	if lesionRetunes != 0 {
		t.Fatalf("lesion arm committed %d retunes, want 0", lesionRetunes)
	}
	if tunedGen != lesionGen {
		t.Fatalf("generation diverged: tuner %d, lesion %d — a retune must not tick the mutation generation", tunedGen, lesionGen)
	}
	if want := uint64(2 * rounds); tunedGen != want {
		t.Fatalf("generation = %d, want %d (one tick per mutation, none per retune)", tunedGen, want)
	}
	if fresh <= 0 || lesionFresh <= 0 {
		t.Fatalf("degenerate fresh baselines: %v, %v", fresh, lesionFresh)
	}
	if tunedEnd > 1.10*fresh {
		t.Fatalf("tuned end scan/user %.1f exceeds fresh-build baseline %.1f by more than 10%%", tunedEnd, fresh)
	}
	if lesionEnd < 1.40*lesionFresh {
		t.Fatalf("lesion end scan/user %.1f within 40%% of fresh baseline %.1f — scenario shows no structural decay to recover", lesionEnd, lesionFresh)
	}
	t.Logf("scan/user: tuned %.1f vs fresh %.1f (%+.0f%%), lesion %.1f vs fresh %.1f (%+.0f%%), %d retunes",
		tunedEnd, fresh, 100*(tunedEnd-fresh)/fresh,
		lesionEnd, lesionFresh, 100*(lesionEnd-lesionFresh)/lesionFresh, retunes)
}

// TestRetuneEquivalence forces a retune after one churn round for every
// sub-solver family and shard count and checks the re-structured composite
// against the mutable-corpus oracle: entry-for-entry identical to an unbuilt
// peer built from scratch over the mutated corpus.
func TestRetuneEquivalence(t *testing.T) {
	const (
		nItems = 160
		nUsers = 40
		d      = 12
		k      = 8
		batch  = 20
	)
	factories := map[string]SolverFactory{
		"BMM":     func() Solver { return NewBMM(BMMConfig{}) },
		"LEMP":    func() Solver { return NewLEMP(LEMPConfig{Seed: 3}) },
		"MAXIMUS": func() Solver { return NewMaximus(MaximusConfig{Seed: 3}) },
	}
	users := driftMatrix(t, rand.New(rand.NewSource(11)), nUsers, d, 1, 1)
	for name, factory := range factories {
		for _, sCount := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/S=%d", name, sCount), func(t *testing.T) {
				rng := rand.New(rand.NewSource(13))
				items := driftMatrix(t, rand.New(rand.NewSource(5)), nItems, d, 40, 0.97)
				s := NewSharded(ShardedConfig{
					Shards:      sCount,
					Partitioner: ShardByNorm(),
					Factory:     factory,
				})
				if err := s.Build(users, items); err != nil {
					t.Fatal(err)
				}
				if err := trendChurn(s, rng, batch, d); err != nil {
					t.Fatal(err)
				}
				res, err := s.Retune(RetuneRequest{})
				if err != nil {
					t.Fatal(err)
				}
				if res.NewShards < 1 {
					t.Fatalf("retune reported %d shards", res.NewShards)
				}
				fresh := NewSharded(ShardedConfig{
					Shards:      res.NewShards,
					Partitioner: ShardByNorm(),
					Factory:     factory,
				})
				if err := VerifyMutation(s, fresh, users, s.Items(), k, 1e-8); err != nil {
					t.Fatalf("retuned composite diverges from fresh build: %v", err)
				}
			})
		}
	}
}

// TestAdaptiveRetuneUnderLoad commits background retunes while queries and
// logged mutations flow through a serving.Server — the drain-boundary swap
// under real contention (meaningful under -race). The mutation generation
// observed through Stats must stay monotone, and Close must stop the tuner
// before the queue drains so no retune dispatches into teardown.
func TestAdaptiveRetuneUnderLoad(t *testing.T) {
	const (
		nItems = 200
		nUsers = 40
		d      = 12
		k      = 6
		batch  = 20
	)
	rng := rand.New(rand.NewSource(29))
	users := driftMatrix(t, rand.New(rand.NewSource(17)), nUsers, d, 1, 1)
	items := driftMatrix(t, rand.New(rand.NewSource(19)), nItems, d, 50, 0.98)
	sh := driftSharded(t, users, items, 4)
	srv, err := NewServer(sh, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := srv.Adapt(AdaptiveConfig{
		Interval: 2 * time.Millisecond,
		Policy:   DriftPolicy{MinChurn: 1, MaxImbalance: 1.01, MinWindowUsers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = tuner // owned by the server; Close stops it

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // query load
		defer wg.Done()
		for u := 0; !stop.Load(); u = (u + 1) % nUsers {
			if _, err := srv.Query(context.Background(), u, k); err != nil {
				t.Errorf("query: %v", err)
				return
			}
		}
	}()
	go func() { // churn load through the mutation queue
		defer wg.Done()
		for round := 0; !stop.Load(); round++ {
			err := srv.Mutate(func(m ItemMutator) error {
				return trendChurn(m.(*Sharded), rng, batch, d)
			})
			if err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	deadline := time.Now().Add(250 * time.Millisecond)
	var lastGen uint64
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Generation < lastGen {
			t.Fatalf("generation moved backwards: %d -> %d", lastGen, st.Generation)
		}
		lastGen = st.Generation
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	st := srv.Stats()
	srv.Close()
	if st.TunerChecks == 0 {
		t.Fatal("background tuner never checked the drift policy")
	}
	t.Logf("under load: generation %d, tuner checks %d, triggers %d, retunes %d",
		st.Generation, st.TunerChecks, st.TunerTriggers, st.Retunes)
}
