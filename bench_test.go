package optimus

// One testing.B benchmark per table/figure of the paper's evaluation (§V).
// These run the same workloads as cmd/mipsbench at a reduced scale so that
// `go test -bench=. -benchmem` finishes quickly; the mipsbench tool runs the
// full-size sweeps and prints the paper-style reports. The sub-benchmark
// names encode (model, strategy, K) so benchstat can diff runs.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"optimus/internal/core"
	"optimus/internal/dataset"
	"optimus/internal/fexipro"
	"optimus/internal/lemp"
	"optimus/internal/mips"
	"optimus/internal/mutlog"
	"optimus/internal/shard"
	"optimus/internal/transport"
)

const benchScale = 0.12

func benchModel(b *testing.B, name string) *dataset.Model {
	b.Helper()
	cfg, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dataset.Generate(cfg.Scale(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchSolver(name string) mips.Solver {
	switch name {
	case "BMM":
		return core.NewBMM(core.BMMConfig{})
	case "MAXIMUS":
		return core.NewMaximus(core.MaximusConfig{Seed: 1})
	case "LEMP":
		return lemp.New(lemp.Config{Seed: 1})
	case "FEXIPRO-SI":
		return fexipro.New(fexipro.Config{Variant: fexipro.SI})
	case "FEXIPRO-SIR":
		return fexipro.New(fexipro.Config{Variant: fexipro.SIR})
	}
	panic("unknown solver " + name)
}

// benchQueryAll builds once, then times QueryAll(k) per iteration.
func benchQueryAll(b *testing.B, m *dataset.Model, solver string, k int) {
	b.Helper()
	s := benchSolver(solver)
	if err := s.Build(m.Users, m.Items); err != nil {
		b.Fatal(err)
	}
	if _, err := s.QueryAll(k); err != nil { // warm tuning caches (LEMP)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.QueryAll(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Users.Rows())*float64(b.N)/b.Elapsed().Seconds(), "users/s")
}

// BenchmarkFig2 — the motivating head-to-head: BMM vs LEMP vs FEXIPRO on the
// Netflix-regime and R2-regime f=50 models across K.
func BenchmarkFig2(b *testing.B) {
	for _, model := range []string{"netflix-dsgd-50", "r2-nomad-50"} {
		m := benchModel(b, model)
		for _, solver := range []string{"BMM", "LEMP", "FEXIPRO-SI"} {
			for _, k := range []int{1, 10, 50} {
				b.Run(fmt.Sprintf("%s/%s/K=%d", model, solver, k), func(b *testing.B) {
					benchQueryAll(b, m, solver, k)
				})
			}
		}
	}
}

// BenchmarkFig4 — index construction cost (the cheap side of the Fig 4
// asymmetry; the expensive retrieval side is BenchmarkFig2/Fig5).
func BenchmarkFig4(b *testing.B) {
	for _, model := range []string{"netflix-dsgd-10", "netflix-dsgd-50", "netflix-dsgd-100"} {
		m := benchModel(b, model)
		for _, solver := range []string{"LEMP", "FEXIPRO-SI", "MAXIMUS"} {
			b.Run(fmt.Sprintf("%s/%s/build", model, solver), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := benchSolver(solver)
					if err := s.Build(m.Users, m.Items); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5 — the headline grid on one representative model per family
// (full 23-model sweep: cmd/mipsbench fig5).
func BenchmarkFig5(b *testing.B) {
	models := []string{
		"netflix-dsgd-50", "netflix-nomad-50", "netflix-bpr-50",
		"r2-nomad-50", "kdd-nomad-50", "kdd-ref-51", "glove-50",
	}
	for _, model := range models {
		m := benchModel(b, model)
		for _, solver := range []string{"BMM", "MAXIMUS", "LEMP", "FEXIPRO-SIR", "FEXIPRO-SI"} {
			for _, k := range []int{1, 10} {
				b.Run(fmt.Sprintf("%s/%s/K=%d", model, solver, k), func(b *testing.B) {
					benchQueryAll(b, m, solver, k)
				})
			}
		}
	}
}

// BenchmarkFig6 — multi-core scaling of the three parallelizable solvers.
func BenchmarkFig6(b *testing.B) {
	m := benchModel(b, "netflix-nomad-50")
	for _, solver := range []string{"BMM", "MAXIMUS", "LEMP"} {
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", solver, threads), func(b *testing.B) {
				var s mips.Solver
				switch solver {
				case "BMM":
					s = core.NewBMM(core.BMMConfig{Threads: threads})
				case "MAXIMUS":
					s = core.NewMaximus(core.MaximusConfig{Threads: threads, Seed: 1})
				case "LEMP":
					s = lemp.New(lemp.Config{Threads: threads, Seed: 1})
				}
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(1); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.QueryAll(1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkParallelScaling — thread-scaling of the two paper-contribution
// solvers on the shared parallel engine. Acceptance target: on a 4+-core
// machine, threads=4 is ≥ 2.5× threads=1 for both solvers, with results
// bit-identical across thread counts (enforced by internal/parallel's
// determinism tests). Compare with
//
//	go test -bench=ParallelScaling -run=^$ -count=5 | benchstat
//
// Builds happen once per (solver, threads) outside the timed loop; the
// measured region is QueryAll, the batch hot path OPTIMUS arbitrates.
func BenchmarkParallelScaling(b *testing.B) {
	m := benchModel(b, "netflix-nomad-50")
	const k = 10
	for _, solver := range []string{"BMM", "MAXIMUS"} {
		for _, threads := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/threads=%d", solver, threads), func(b *testing.B) {
				var s mips.Solver
				switch solver {
				case "BMM":
					s = core.NewBMM(core.BMMConfig{Threads: threads})
				case "MAXIMUS":
					s = core.NewMaximus(core.MaximusConfig{Threads: threads, Seed: 1})
				}
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(k); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.QueryAll(k); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(m.Users.Rows())*float64(b.N)/b.Elapsed().Seconds(), "users/s")
			})
		}
	}
}

// BenchmarkShardedScaling — shard-count scaling of the item-sharded
// execution layer over the two batching solvers, at the process-default
// thread count. S=1 vs the plain solver isolates the composite's overhead
// (remap + k-way merge); higher S measures the fan-out. Compare with
//
//	go test -bench=ShardedScaling -run=^$ -count=5 | benchstat
//
// (single runs on a loaded box swing ±30%; always difference with
// benchstat, as the CI bench job does).
func BenchmarkShardedScaling(b *testing.B) {
	m := benchModel(b, "netflix-nomad-50")
	const k = 10
	for _, solver := range []string{"BMM", "MAXIMUS"} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards=%d", solver, shards), func(b *testing.B) {
				solver := solver
				s := shard.New(shard.Config{
					Shards:  shards,
					Factory: func() mips.Solver { return benchSolver(solver) },
				})
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(k); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.QueryAll(k); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(m.Users.Rows())*float64(b.N)/b.Elapsed().Seconds(), "users/s")
			})
		}
	}
}

// BenchmarkThresholdPruning — cross-shard threshold propagation on the
// by-norm partition: the two-wave floor-seeded query (seeded) against the
// blind single-wave fan-out (blind), for both pruning sub-solvers on a
// norm-skewed model. Besides users/s, each run reports tail-scan/user — the
// candidates the tail shards evaluated per queried user, a deterministic
// counter identical across runs and thread counts — so the pruning win
// survives noisy CI runners where wall-clock deltas drown in jitter.
// Compare with
//
//	go test -bench=ThresholdPruning -run=^$ -count=5 | benchstat
func BenchmarkThresholdPruning(b *testing.B) {
	m := benchModel(b, "kdd-nomad-50") // the registry's heaviest norm skew
	const k = 10
	const shards = 4
	for _, solver := range []string{"LEMP", "MAXIMUS"} {
		for _, mode := range []string{"blind", "seeded"} {
			b.Run(fmt.Sprintf("%s/S=%d/%s", solver, shards, mode), func(b *testing.B) {
				solver := solver
				s := shard.New(shard.Config{
					Shards:              shards,
					Partitioner:         shard.ByNorm(),
					Factory:             func() mips.Solver { return benchSolver(solver) },
					DisableFloorSeeding: mode == "blind",
				})
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(k); err != nil { // warm tuning caches (LEMP)
					b.Fatal(err)
				}
				s.ResetScanStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.QueryAll(k); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				var tail int64
				for si, st := range s.ShardScanStats() {
					if si > 0 {
						tail += st.Scanned
					}
				}
				users := float64(m.Users.Rows()) * float64(b.N)
				b.ReportMetric(users/b.Elapsed().Seconds(), "users/s")
				b.ReportMetric(float64(tail)/users, "tail-scan/user")
			})
		}
	}
}

// BenchmarkWaveScheduling — the wave-schedule sweep on the by-norm
// partition: blind single-wave fan-out, the head-seeded two-wave default,
// the serial cascade (each wave's union k-th tightens the next wave's
// floors), and the pipelined schedule (all shards concurrent over a live
// floor board). Besides users/s, each run reports scan/user — total
// candidates evaluated per queried user. The counter is deterministic for
// every schedule except pipelined, whose floors race shard completion;
// regression gating reads the cascade and two-wave rows. Compare with
//
//	go test -bench=WaveScheduling -run=^$ -count=5 | benchstat
func BenchmarkWaveScheduling(b *testing.B) {
	m := benchModel(b, "kdd-nomad-50") // the registry's heaviest norm skew
	const k = 10
	const shards = 4
	for _, solver := range []string{"LEMP", "MAXIMUS"} {
		for _, sched := range []shard.Schedule{
			shard.SingleWave, shard.TwoWave, shard.Cascade, shard.Pipelined,
		} {
			b.Run(fmt.Sprintf("%s/S=%d/%s", solver, shards, sched), func(b *testing.B) {
				solver := solver
				s := shard.New(shard.Config{
					Shards:      shards,
					Partitioner: shard.ByNorm(),
					Schedule:    sched,
					Factory:     func() mips.Solver { return benchSolver(solver) },
				})
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(k); err != nil { // warm tuning caches (LEMP)
					b.Fatal(err)
				}
				s.ResetScanStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.QueryAll(k); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				var total int64
				for _, st := range s.WaveScanStats() {
					total += st.Scanned
				}
				users := float64(m.Users.Rows()) * float64(b.N)
				b.ReportMetric(users/b.Elapsed().Seconds(), "users/s")
				b.ReportMetric(float64(total)/users, "scan/user")
			})
		}
	}
}

// BenchmarkLoopbackOverhead — the wire-path tax: the same by-norm sharded
// composite served by in-process workers (direct) and by loopback-transport
// workers (every coordinator↔worker call round-tripped through the wire
// codec). Loopback pays the full encode/decode cost with zero network
// latency, so direct-vs-wired users/s is pure serialization overhead — the
// cost floor of a networked deployment. Wired runs additionally report
// bytes/user (request + reply traffic per queried user) off the transport's
// byte meters. Compare with
//
//	go test -bench=LoopbackOverhead -run=^$ -count=5 | benchstat
func BenchmarkLoopbackOverhead(b *testing.B) {
	m := benchModel(b, "netflix-nomad-50")
	const k = 10
	const shards = 4
	for _, solver := range []string{"BMM", "LEMP"} {
		for _, path := range []string{"direct", "wired"} {
			b.Run(fmt.Sprintf("%s/S=%d/%s", solver, shards, path), func(b *testing.B) {
				solver := solver
				cfg := shard.Config{
					Shards:      shards,
					Partitioner: shard.ByNorm(),
					Factory:     func() mips.Solver { return benchSolver(solver) },
				}
				var lb *transport.Loopback
				if path == "wired" {
					lb = transport.NewLoopback()
					cfg.WorkerDialer = lb.Dialer()
				}
				s := shard.New(cfg)
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(k); err != nil { // warm tuning caches (LEMP)
					b.Fatal(err)
				}
				var before transport.Stats
				if lb != nil {
					before = lb.Stats()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.QueryAll(k); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				users := float64(m.Users.Rows()) * float64(b.N)
				b.ReportMetric(users/b.Elapsed().Seconds(), "users/s")
				if lb != nil {
					after := lb.Stats()
					wire := (after.BytesSent - before.BytesSent) +
						(after.BytesReceived - before.BytesReceived)
					b.ReportMetric(float64(wire)/users, "bytes/user")
				}
			})
		}
	}
}

// benchModelSeed is benchModel with an extra seed offset — an independent
// draw from the same distribution, the churn benchmark's arrival stream.
func benchModelSeed(b *testing.B, name string, extra int64) *dataset.Model {
	b.Helper()
	cfg, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg = cfg.Scale(benchScale)
	cfg.Seed += extra
	m, err := dataset.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkChurn — the mutable-corpus lifecycle on the by-norm sharded
// executor: each op is one churn round (add a batch, remove a batch spread
// across the norm range, serve the whole user base). The dirty-shard mode
// mutates in place, one AddItems + one RemoveItems per round — PR 4's
// per-event baseline; the full-rebuild mode pays a fresh composite Build
// over the mutated corpus — the static-solver baseline the lifecycle
// replaces, which by definition reconstructs all S sub-solvers every round;
// the batched-F* modes enqueue the same events on a mutation log
// (internal/mutlog) and flush every F rounds, so one apply — one drain
// behind a serving layer, at most one AddItems + one RemoveItems against
// the composite — absorbs F rounds of events. The wall-clock delta between
// dirty-shard and full-rebuild is the rebuild time saved; dirty-shard and
// batched modes additionally report the deterministic amortization
// counters the noisy-runner-proof acceptance reads: dirty-shards/op,
// gen-ticks/event (composite Generation advances per applied mutation; the
// log divides it by F), and drains/event for batched modes (log flushes per
// catalog event — strictly fewer drains than events). An event is one
// catalog row added or removed (2·batch per round). Compare with
//
//	go test -bench=Churn -run=^$ -count=5 | benchstat
func BenchmarkChurn(b *testing.B) {
	m := benchModel(b, "r2-nomad-50")
	pool := benchModelSeed(b, "r2-nomad-50", 977).Items
	const k = 10
	const shards = 4
	batch := m.Items.Rows() / 100
	if batch < 1 {
		batch = 1
	}
	flushEvery := map[string]int{"batched-F4": 4, "batched-F16": 16}
	for _, solver := range []string{"LEMP", "MAXIMUS"} {
		for _, mode := range []string{"dirty-shard", "full-rebuild", "batched-F4", "batched-F16"} {
			b.Run(fmt.Sprintf("%s/S=%d/%s", solver, shards, mode), func(b *testing.B) {
				solver := solver
				cfg := shard.Config{
					Shards:      shards,
					Partitioner: shard.ByNorm(),
					Factory:     func() mips.Solver { return benchSolver(solver) },
				}
				s := shard.New(cfg)
				if err := s.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				if _, err := s.QueryAll(k); err != nil { // warm tuning caches
					b.Fatal(err)
				}
				var log *mutlog.Log
				if F := flushEvery[mode]; F > 0 {
					applier, err := mutlog.Direct(s)
					if err != nil {
						b.Fatal(err)
					}
					if log, err = mutlog.New(applier, mutlog.Config{MaxEvents: -1, MaxDelay: -1}); err != nil {
						b.Fatal(err)
					}
				}
				corpus := m.Items
				next := 0
				draw := func() *Matrix {
					if next+batch > pool.Rows() {
						next = 0 // recycle the arrival stream
					}
					add := pool.RowSlice(next, next+batch)
					next += batch
					return add
				}
				rm := make([]int, batch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					add := draw()
					for j := range rm {
						// Deterministic spread across the whole norm range.
						rm[j] = (j*corpus.Rows()/batch + i*131) % corpus.Rows()
					}
					sorted, err := mips.ValidateRemoveIDs(rm, corpus.Rows()+batch)
					if err != nil {
						b.Fatal(err)
					}
					switch {
					case mode == "dirty-shard":
						if _, err := s.AddItems(add); err != nil {
							b.Fatal(err)
						}
						if err := s.RemoveItems(sorted); err != nil {
							b.Fatal(err)
						}
						corpus = RemoveMatrixRows(AppendMatrixRows(corpus, add), sorted)
					case log != nil:
						// The log sees the identical event stream; rm ids are
						// virtual-corpus ids, which the bookkeeping below
						// keeps numerically equal to the dirty-shard mode's.
						if _, err := log.Add(add); err != nil {
							b.Fatal(err)
						}
						if err := log.Remove(sorted); err != nil {
							b.Fatal(err)
						}
						corpus = RemoveMatrixRows(AppendMatrixRows(corpus, add), sorted)
						if (i+1)%flushEvery[mode] == 0 {
							if err := log.Flush(); err != nil {
								b.Fatal(err)
							}
						}
					default: // full-rebuild
						corpus = RemoveMatrixRows(AppendMatrixRows(corpus, add), sorted)
						s = shard.New(cfg)
						if err := s.Build(m.Users, corpus); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := s.QueryAll(k); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				rounds := float64(b.N)
				events := rounds * float64(2*batch)
				b.ReportMetric(rounds/b.Elapsed().Seconds(), "rounds/s")
				if log != nil {
					if err := log.Close(); err != nil { // final partial batch
						b.Fatal(err)
					}
					b.ReportMetric(float64(log.Stats().Flushes)/events, "drains/event")
				}
				if mode != "full-rebuild" {
					st := s.MutationStats()
					b.ReportMetric(float64(st.Dirty())/rounds, "dirty-shards/op")
					b.ReportMetric(float64(s.Generation())/events, "gen-ticks/event")
				}
			})
		}
	}
}

// BenchmarkAdaptiveRetune — one full drift-and-recover cycle per op on the
// scripted trending-catalog scenario (adaptive_test.go): build the by-norm
// BMM composite, churn it until the cut goes stale, let the manual-mode
// tuner fire, and compare the recovered scan rate against a fresh build of
// the mutated corpus. The reported metrics are deterministic (fixed seeds,
// pinned two-wave schedule, scan counters rather than wall-clock), so the
// CI bench artifact flags an adaptation regression as a metric flip:
// retunes/op is the trigger firing at all (1.0 when healthy), and
// scan-recovered-% is how much of the structural decay the retune bought
// back (100 = recovered to the fresh-build rate; the assertions in
// TestAdaptiveDriftRecovery hold it near 100).
func BenchmarkAdaptiveRetune(b *testing.B) {
	const (
		nItems = 240
		nUsers = 60
		d      = 16
		shards = 4
		k      = 10
		rounds = 3
	)
	batch := nItems / (2 * shards)
	users := driftMatrix(b, rand.New(rand.NewSource(41)), nUsers, d, 1, 1)
	items := driftMatrix(b, rand.New(rand.NewSource(7)), nItems, d, 50, 0.98)
	newComposite := func() *Sharded {
		return NewSharded(ShardedConfig{
			Shards:      shards,
			Partitioner: ShardByNorm(),
			Factory:     func() Solver { return NewBMM(BMMConfig{}) },
			Schedule:    ScheduleTwoWave,
		})
	}
	scanU := func(s *Sharded) float64 {
		before := s.ScanStats().Scanned
		if _, err := s.QueryAll(k); err != nil {
			b.Fatal(err)
		}
		return float64(s.ScanStats().Scanned-before) / nUsers
	}
	var retunes, recovered float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newComposite()
		if err := s.Build(users, items); err != nil {
			b.Fatal(err)
		}
		tuner, err := NewAdaptiveTuner(s, AdaptiveConfig{
			Interval: -1, // manual mode: deterministic checks
			Policy:   DriftPolicy{MinChurn: int64(batch)},
		})
		if err != nil {
			b.Fatal(err)
		}
		scanU(s)
		if _, _, err := tuner.Check(); err != nil { // quiet: arms the baseline
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(97))
		for r := 0; r < rounds; r++ {
			if err := trendChurn(s, rng, batch, d); err != nil {
				b.Fatal(err)
			}
		}
		decayed := scanU(s)
		if _, _, err := tuner.Check(); err != nil {
			b.Fatal(err)
		}
		tuned := scanU(s)
		fresh := newComposite()
		if err := fresh.Build(users, s.Items()); err != nil {
			b.Fatal(err)
		}
		freshU := scanU(fresh)
		if decayed > freshU {
			recovered += 100 * (decayed - tuned) / (decayed - freshU)
		}
		retunes += float64(s.Retunes())
		tuner.Close()
	}
	b.StopTimer()
	b.ReportMetric(retunes/float64(b.N), "retunes/op")
	b.ReportMetric(recovered/float64(b.N), "scan-recovered-%")
}

// benchModelAt is benchModel at an explicit scale (the coldstart benchmark
// sweeps scale itself).
func benchModelAt(b *testing.B, name string, scale float64) *dataset.Model {
	b.Helper()
	cfg, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := dataset.Generate(cfg.Scale(scale))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkColdStart — snapshot restore vs fresh build, the serving restart
// path: the build arm pays a full Build from the raw matrices per op, the
// load arm restores the same index from an in-memory snapshot (Persister
// round-trip). The load arm also reports snapshot-bytes and deterministic
// (1 = two consecutive Saves produced identical bytes) — the properties the
// golden-file compatibility tests and content-addressed shard shipping
// rely on, surfaced in the CI bench artifact where a regression is visible
// as a metric flip rather than a wall-clock delta. Compare with
//
//	go test -bench=ColdStart -run=^$ -count=5 | benchstat
func BenchmarkColdStart(b *testing.B) {
	for _, scale := range []float64{0.06, 0.12} {
		m := benchModelAt(b, "r2-nomad-50", scale)
		for _, solver := range []string{"MAXIMUS", "LEMP", "FEXIPRO-SI"} {
			b.Run(fmt.Sprintf("scale=%.2f/%s/build", scale, solver), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := benchSolver(solver)
					if err := s.Build(m.Users, m.Items); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("scale=%.2f/%s/load", scale, solver), func(b *testing.B) {
				solver := solver
				src := benchSolver(solver).(Persister)
				if err := src.(mips.Solver).Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				if err := src.Save(&buf); err != nil {
					b.Fatal(err)
				}
				var buf2 bytes.Buffer
				if err := src.Save(&buf2); err != nil {
					b.Fatal(err)
				}
				deterministic := 0.0
				if bytes.Equal(buf.Bytes(), buf2.Bytes()) {
					deterministic = 1.0
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst := benchSolver(solver).(Persister)
					if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(buf.Len()), "snapshot-bytes")
				b.ReportMetric(deterministic, "deterministic")
			})
		}
	}
}

// BenchmarkFig7 — cost of one OPTIMUS measurement pass (build + sample +
// decide) at the sample ratios the estimator sweep uses.
func BenchmarkFig7(b *testing.B) {
	m := benchModel(b, "kdd-ref-51")
	for _, ratio := range []float64{0.01, 0.05, 0.10} {
		b.Run(fmt.Sprintf("measure/sample=%.2f", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.NewOptimus(core.OptimusConfig{
					SampleFraction: ratio, L2CacheBytes: 1, Seed: int64(i),
				}, core.NewMaximus(core.MaximusConfig{Seed: 1}))
				if _, err := opt.Measure(m.Users, m.Items, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8 — the item-blocking lesion: MAXIMUS traversal with and
// without the shared block multiply.
func BenchmarkFig8(b *testing.B) {
	for _, model := range []string{"netflix-nomad-50", "r2-nomad-50"} {
		m := benchModel(b, model)
		for _, blocking := range []bool{true, false} {
			label := "blocking=on"
			if !blocking {
				label = "blocking=off"
			}
			b.Run(fmt.Sprintf("%s/%s", model, label), func(b *testing.B) {
				mx := core.NewMaximus(core.MaximusConfig{
					Seed: 1, DisableItemBlocking: !blocking,
				})
				if err := mx.Build(m.Users, m.Items); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mx.QueryAll(1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable2 — full OPTIMUS runs (measure + finish with the winner) for
// each two-way pairing on one BMM-regime and one index-regime model.
func BenchmarkTable2(b *testing.B) {
	for _, model := range []string{"netflix-dsgd-50", "r2-nomad-50"} {
		m := benchModel(b, model)
		pairings := map[string]func() mips.Solver{
			"LEMP":        func() mips.Solver { return lemp.New(lemp.Config{Seed: 1}) },
			"FEXIPRO-SI":  func() mips.Solver { return fexipro.New(fexipro.Config{Variant: fexipro.SI}) },
			"FEXIPRO-SIR": func() mips.Solver { return fexipro.New(fexipro.Config{Variant: fexipro.SIR}) },
			"MAXIMUS":     func() mips.Solver { return core.NewMaximus(core.MaximusConfig{Seed: 1}) },
		}
		for _, name := range []string{"LEMP", "FEXIPRO-SI", "FEXIPRO-SIR", "MAXIMUS"} {
			mk := pairings[name]
			b.Run(fmt.Sprintf("%s/BMM+%s", model, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opt := core.NewOptimus(core.OptimusConfig{Seed: 1}, mk())
					if _, _, err := opt.Run(m.Users, m.Items, 10); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable1 — dataset generation throughput (the substrate every other
// benchmark depends on).
func BenchmarkTable1(b *testing.B) {
	cfg, err := dataset.ByName("netflix-dsgd-50")
	if err != nil {
		b.Fatal(err)
	}
	cfg = cfg.Scale(benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := dataset.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
